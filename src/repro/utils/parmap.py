"""Deterministic process-pool map for independent sweep points.

The tuning sweeps evaluate grid points that are pure functions of their
spec — no shared state beyond the content-addressed cache, whose atomic
writes already make concurrent writers safe.  :func:`parallel_map`
fans such items out over a :class:`~concurrent.futures.
ProcessPoolExecutor` and reassembles results **in input order** whatever
order the workers finish in, so a parallel sweep returns exactly the
serial sweep's list.  Progress callbacks fire in *as-completed* order —
that is the whole point of watching a parallel sweep.

Mirrors the fail-fast discipline of
:class:`repro.engine.scheduler.ParallelExecutor`: the first worker
exception cancels everything still pending and re-raises in the caller;
Ctrl-C abandons the pool without waiting for stragglers.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.engine.scheduler import effective_cpu_count


def resolve_workers(workers: Optional[int], num_items: int) -> int:
    """The worker-process count a ``workers`` request resolves to.

    ``None`` or ``1`` mean serial; ``0`` means one per available core;
    explicit counts are clamped to the number of items (an idle worker
    is pure spawn cost).
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = effective_cpu_count()
    return max(1, min(workers, num_items))


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    workers: Optional[int] = 1,
    on_progress: Optional[Callable[[int, int, str], None]] = None,
    labels: Optional[Sequence[str]] = None,
) -> List[Any]:
    """``[fn(item) for item in items]``, optionally across processes.

    Results always come back in input order.  ``on_progress(done,
    total, label)`` fires once per finished item — in input order when
    serial, in completion order when parallel.  ``fn`` and every item
    must be picklable when ``workers`` resolves past 1.
    """
    total = len(items)
    names = list(labels) if labels is not None else [str(i) for i in range(total)]
    if labels is not None and len(names) != total:
        raise ValueError(
            f"labels/items length mismatch: {len(names)} != {total}"
        )
    workers = resolve_workers(workers, total)
    if workers <= 1 or total <= 1:
        out = []
        for i, item in enumerate(items):
            out.append(fn(item))
            if on_progress is not None:
                on_progress(i + 1, total, names[i])
        return out

    from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait

    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        futures = [pool.submit(fn, item) for item in items]
        index = {f: i for i, f in enumerate(futures)}
        pending = set(futures)
        done_count = 0
        while pending:
            finished, pending = wait(pending, return_when=FIRST_EXCEPTION)
            for future in finished:
                exc = future.exception()
                if exc is not None:
                    for f in pending:
                        f.cancel()
                    raise exc
                done_count += 1
                if on_progress is not None:
                    on_progress(done_count, total, names[index[future]])
        return [f.result() for f in futures]
    except KeyboardInterrupt:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
