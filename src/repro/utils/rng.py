"""Deterministic random-number management.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Experiments derive *independent* child
streams from a single root seed via :class:`RngFactory`, so changing the
number of sequences or models never perturbs the randomness of the others
(counter-based sub-seeding, not sequential draws from one stream).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a nondeterministic generator; an ``int`` a seeded one;
    an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(root_seed: int, n: int, *, stream: int = 0) -> np.ndarray:
    """Derive ``n`` independent 63-bit child seeds from ``root_seed``.

    Uses :class:`numpy.random.SeedSequence` spawning so children are
    statistically independent and stable across numpy versions.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    n:
        Number of child seeds to derive.
    stream:
        Namespace so different subsystems (e.g. dataset vs. detector) get
        disjoint children from the same root.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    ss = np.random.SeedSequence(entropy=root_seed, spawn_key=(stream,))
    children = ss.spawn(n)
    return np.array([c.generate_state(1, dtype=np.uint64)[0] >> 1 for c in children], dtype=np.int64)


class RngFactory:
    """Hierarchical deterministic RNG factory.

    A factory is constructed from a root seed; ``child(*key)`` returns a
    generator deterministically derived from the root and the key parts.
    The same key always yields the same stream, and distinct keys yield
    independent streams.

    Examples
    --------
    >>> f = RngFactory(1234)
    >>> g1 = f.child("dataset", 0)
    >>> g2 = f.child("dataset", 1)
    >>> g1b = RngFactory(1234).child("dataset", 0)
    >>> float(g1.random()) == float(g1b.random())
    True
    """

    def __init__(self, root_seed: int):
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
        self.root_seed = int(root_seed)

    def child(self, *key: Union[str, int]) -> np.random.Generator:
        """Return a generator for the given hierarchical key."""
        spawn_key = tuple(self._encode(part) for part in key)
        ss = np.random.SeedSequence(entropy=self.root_seed, spawn_key=spawn_key)
        return np.random.default_rng(ss)

    def child_seed(self, *key: Union[str, int]) -> int:
        """Return a stable integer seed for the given key (for pickling/logging)."""
        spawn_key = tuple(self._encode(part) for part in key)
        ss = np.random.SeedSequence(entropy=self.root_seed, spawn_key=spawn_key)
        return int(ss.generate_state(1, dtype=np.uint64)[0] >> 1)

    @staticmethod
    def _encode(part: Union[str, int]) -> int:
        if isinstance(part, (int, np.integer)):
            value = int(part)
            if value < 0:
                raise ValueError(f"integer key parts must be >= 0, got {value}")
            return value
        if isinstance(part, str):
            # Stable 32-bit FNV-1a hash; python's hash() is salted per process.
            h = 2166136261
            for byte in part.encode("utf-8"):
                h = ((h ^ byte) * 16777619) & 0xFFFFFFFF
            return h
        raise TypeError(f"key parts must be str or int, got {type(part).__name__}")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RngFactory(root_seed={self.root_seed})"
