"""Frame-level detection container shared across the library.

A :class:`Detections` holds parallel arrays of boxes, confidence scores and
integer class labels for one frame.  It is the interchange type between the
simulated detectors, the tracker, the cascade systems and the metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.boxes.box import as_boxes, empty_boxes
from repro.boxes.nms import class_aware_nms


@dataclass
class Detections:
    """Detections for a single frame.

    Parameters
    ----------
    boxes : (N, 4) array
        ``[x1, y1, x2, y2]`` boxes.
    scores : (N,) array
        Confidence scores in [0, 1].
    labels : (N,) int array
        Class indices.
    """

    boxes: np.ndarray
    scores: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.boxes = as_boxes(self.boxes) if np.size(self.boxes) else empty_boxes()
        self.scores = np.asarray(self.scores, dtype=np.float64).reshape(-1)
        self.labels = np.asarray(self.labels, dtype=np.int64).reshape(-1)
        n = self.boxes.shape[0]
        if self.scores.shape[0] != n or self.labels.shape[0] != n:
            raise ValueError(
                "boxes, scores and labels must agree in length, got "
                f"{n}, {self.scores.shape[0]}, {self.labels.shape[0]}"
            )

    @classmethod
    def empty(cls) -> "Detections":
        """An empty detection set."""
        return cls(empty_boxes(), np.zeros(0), np.zeros(0, dtype=np.int64))

    @classmethod
    def concatenate(cls, parts: Sequence["Detections"]) -> "Detections":
        """Stack several detection sets into one."""
        parts = [p for p in parts if len(p) > 0]
        if not parts:
            return cls.empty()
        return cls(
            np.concatenate([p.boxes for p in parts], axis=0),
            np.concatenate([p.scores for p in parts]),
            np.concatenate([p.labels for p in parts]),
        )

    def __len__(self) -> int:
        return self.boxes.shape[0]

    def __iter__(self) -> Iterator[Tuple[np.ndarray, float, int]]:
        for i in range(len(self)):
            yield self.boxes[i], float(self.scores[i]), int(self.labels[i])

    def select(self, mask_or_indices: np.ndarray) -> "Detections":
        """Subset by boolean mask or integer indices."""
        idx = np.asarray(mask_or_indices)
        return Detections(self.boxes[idx], self.scores[idx], self.labels[idx])

    def above_score(self, threshold: float) -> "Detections":
        """Keep detections with ``score >= threshold``."""
        return self.select(self.scores >= threshold)

    def for_class(self, label: int) -> "Detections":
        """Keep detections of a single class."""
        return self.select(self.labels == int(label))

    def sorted_by_score(self) -> "Detections":
        """Return a copy sorted by descending score (stable)."""
        return self.select(np.argsort(-self.scores, kind="stable"))

    def nms(self, iou_threshold: float = 0.5) -> "Detections":
        """Apply class-aware NMS and return the surviving detections."""
        keep = class_aware_nms(self.boxes, self.scores, self.labels, iou_threshold)
        return self.select(keep)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Detections(n={len(self)})"
