"""Frame-level detection container shared across the library.

A :class:`Detections` holds parallel arrays of boxes, confidence scores and
integer class labels for one frame.  It is the interchange type between the
simulated detectors, the tracker, the cascade systems and the metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.boxes.box import as_boxes, empty_boxes
from repro.boxes.nms import class_aware_nms


@dataclass
class Detections:
    """Detections for a single frame.

    Parameters
    ----------
    boxes : (N, 4) array
        ``[x1, y1, x2, y2]`` boxes.
    scores : (N,) array
        Confidence scores in [0, 1].
    labels : (N,) int array
        Class indices.
    """

    boxes: np.ndarray
    scores: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.boxes = as_boxes(self.boxes) if np.size(self.boxes) else empty_boxes()
        self.scores = np.asarray(self.scores, dtype=np.float64).reshape(-1)
        self.labels = np.asarray(self.labels, dtype=np.int64).reshape(-1)
        n = self.boxes.shape[0]
        if self.scores.shape[0] != n or self.labels.shape[0] != n:
            raise ValueError(
                "boxes, scores and labels must agree in length, got "
                f"{n}, {self.scores.shape[0]}, {self.labels.shape[0]}"
            )

    @classmethod
    def empty(cls) -> "Detections":
        """An empty detection set."""
        return cls(empty_boxes(), np.zeros(0), np.zeros(0, dtype=np.int64))

    @classmethod
    def concatenate(cls, parts: Sequence["Detections"]) -> "Detections":
        """Stack several detection sets into one."""
        parts = [p for p in parts if len(p) > 0]
        if not parts:
            return cls.empty()
        return cls(
            np.concatenate([p.boxes for p in parts], axis=0),
            np.concatenate([p.scores for p in parts]),
            np.concatenate([p.labels for p in parts]),
        )

    def __len__(self) -> int:
        return self.boxes.shape[0]

    def __iter__(self) -> Iterator[Tuple[np.ndarray, float, int]]:
        for i in range(len(self)):
            yield self.boxes[i], float(self.scores[i]), int(self.labels[i])

    def select(self, mask_or_indices: np.ndarray) -> "Detections":
        """Subset by boolean mask or integer indices."""
        idx = np.asarray(mask_or_indices)
        return Detections(self.boxes[idx], self.scores[idx], self.labels[idx])

    def above_score(self, threshold: float) -> "Detections":
        """Keep detections with ``score >= threshold``."""
        return self.select(self.scores >= threshold)

    def for_class(self, label: int) -> "Detections":
        """Keep detections of a single class."""
        return self.select(self.labels == int(label))

    def sorted_by_score(self) -> "Detections":
        """Return a copy sorted by descending score (stable)."""
        return self.select(np.argsort(-self.scores, kind="stable"))

    def nms(self, iou_threshold: float = 0.5) -> "Detections":
        """Apply class-aware NMS and return the surviving detections."""
        keep = class_aware_nms(self.boxes, self.scores, self.labels, iou_threshold)
        return self.select(keep)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Detections(n={len(self)})"


class DetectionsBuffer:
    """Columnar (struct-of-arrays) accumulator of per-frame detections.

    Long runs accumulate one :class:`Detections` per frame; keeping each as
    its own object means three small arrays plus a Python object per frame.
    This buffer stores all frames' boxes/scores/labels/track-ids in four
    preallocated growing arrays with a frame-offset index, so appending a
    frame is a couple of array copies and memory stays contiguous.

    ``frame(i)`` materializes frame ``i`` back into a :class:`Detections`
    with values bit-identical to what was appended.
    """

    def __init__(self, capacity_rows: int = 256, capacity_frames: int = 64):
        rows = max(capacity_rows, 1)
        frames = max(capacity_frames, 1)
        self._boxes = np.zeros((rows, 4))
        self._scores = np.zeros(rows)
        self._labels = np.zeros(rows, dtype=np.int64)
        self._track_ids = np.zeros(rows, dtype=np.int64)
        self._offsets = np.zeros(frames + 1, dtype=np.int64)
        self._num_frames = 0
        self._num_rows = 0

    def __len__(self) -> int:
        """Number of frames appended so far."""
        return self._num_frames

    @property
    def num_rows(self) -> int:
        """Total detections across all frames."""
        return self._num_rows

    def _ensure_rows(self, extra: int) -> None:
        needed = self._num_rows + extra
        cap = self._scores.shape[0]
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        for name, blank in (
            ("_boxes", np.zeros((cap, 4))),
            ("_scores", np.zeros(cap)),
            ("_labels", np.zeros(cap, dtype=np.int64)),
            ("_track_ids", np.zeros(cap, dtype=np.int64)),
        ):
            old = getattr(self, name)
            blank[: self._num_rows] = old[: self._num_rows]
            setattr(self, name, blank)

    def append(
        self, detections: "Detections", track_ids: Optional[np.ndarray] = None
    ) -> int:
        """Append one frame's detections; returns its frame index.

        ``track_ids`` optionally attaches per-detection track identities
        (stored as -1 when absent).
        """
        n = len(detections)
        self._ensure_rows(n)
        if self._num_frames + 1 >= self._offsets.shape[0]:
            grown = np.zeros(self._offsets.shape[0] * 2, dtype=np.int64)
            grown[: self._num_frames + 1] = self._offsets[: self._num_frames + 1]
            self._offsets = grown
        lo = self._num_rows
        hi = lo + n
        self._boxes[lo:hi] = detections.boxes
        self._scores[lo:hi] = detections.scores
        self._labels[lo:hi] = detections.labels
        if track_ids is None:
            self._track_ids[lo:hi] = -1
        else:
            ids = np.asarray(track_ids, dtype=np.int64).reshape(-1)
            if ids.shape[0] != n:
                raise ValueError(f"track_ids must have length {n}, got {ids.shape[0]}")
            self._track_ids[lo:hi] = ids
        self._num_rows = hi
        frame_index = self._num_frames
        self._num_frames += 1
        self._offsets[self._num_frames] = hi
        return frame_index

    def _bounds(self, index: int) -> Tuple[int, int]:
        if index < 0:
            index += self._num_frames
        if not (0 <= index < self._num_frames):
            raise IndexError(f"frame index {index} out of range for {self._num_frames} frames")
        return int(self._offsets[index]), int(self._offsets[index + 1])

    def frame(self, index: int) -> Detections:
        """Materialize frame ``index`` as a :class:`Detections`."""
        lo, hi = self._bounds(index)
        return Detections(self._boxes[lo:hi], self._scores[lo:hi], self._labels[lo:hi])

    def frame_track_ids(self, index: int) -> np.ndarray:
        """Track ids of frame ``index`` (-1 where none was attached)."""
        lo, hi = self._bounds(index)
        return self._track_ids[lo:hi].copy()

    @property
    def boxes(self) -> np.ndarray:
        """(R, 4) view of all frames' boxes, in append order."""
        return self._boxes[: self._num_rows]

    @property
    def scores(self) -> np.ndarray:
        """(R,) view of all frames' scores, in append order."""
        return self._scores[: self._num_rows]

    @property
    def labels(self) -> np.ndarray:
        """(R,) view of all frames' labels, in append order."""
        return self._labels[: self._num_rows]
