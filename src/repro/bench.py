"""Performance benchmark harness behind ``repro bench``.

Runs every registered system over deterministic synthetic sequences,
measures frames/sec with a per-stage wall-clock split, and micro-benchmarks
the vectorized hot-path kernels against their preserved scalar references
(:mod:`repro.boxes.reference`, :mod:`repro.tracker.reference`).  Results
are written as ``BENCH_<n>.json`` at the repository root so the project's
performance trajectory is a committed, diffable artifact.

Raw frames/sec are machine-dependent and therefore *recorded but not
gated*.  The regression gate compares the **batched/scalar speedup
ratios** — both sides of each ratio are measured in the same process on
the same machine, so the ratio transfers across heterogeneous CI runners.
"""

from __future__ import annotations

import json
import os
import platform
import re
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.boxes.merge import greedy_merge_boxes
from repro.boxes.nms import nms
from repro.boxes.reference import scalar_greedy_merge_boxes, scalar_nms
from repro.core.config import SystemConfig, build_system
from repro.datasets.kitti import kitti_like_dataset
from repro.detections import Detections
from repro.tracker.catdet_tracker import CaTDetTracker, TrackerConfig
from repro.tracker.reference import ScalarCaTDetTracker, ScalarSort
from repro.tracker.sort import Sort, SortConfig

#: The system configurations benchmarked per entry, one per registered kind.
BENCH_SYSTEMS: Dict[str, SystemConfig] = {
    "single": SystemConfig("single", "resnet50"),
    "cascade": SystemConfig("cascade", "resnet50", "resnet10a"),
    "catdet": SystemConfig("catdet", "resnet50", "resnet10a"),
    "keyframe": SystemConfig("keyframe", "resnet50"),
}

#: Tolerated fractional drop of a gated speedup ratio before the
#: comparison fails (the CI bench-smoke gate).
REGRESSION_TOLERANCE = 0.2

#: Ratios gated by :func:`check_regression` (dotted paths into the payload).
GATED_METRICS = (
    "kernels.tracker_catdet.speedup",
    "kernels.tracker_sort.speedup",
    "tune_sweep.speedup",
)


class _TimedStage:
    """Transparent stage proxy accumulating wall-clock per stage."""

    def __init__(self, inner, sink: Dict[str, float]):
        self._inner = inner
        self._sink = sink
        self._name = type(inner).__name__

    def process(self, ctx) -> None:
        start = time.perf_counter()
        self._inner.process(ctx)
        self._sink[self._name] = self._sink.get(self._name, 0.0) + time.perf_counter() - start

    def end_frame(self, ctx) -> None:
        start = time.perf_counter()
        self._inner.end_frame(ctx)
        self._sink[self._name] = self._sink.get(self._name, 0.0) + time.perf_counter() - start

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


def bench_systems(
    num_sequences: int = 1,
    frames_per_sequence: int = 60,
    on_progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Frames/sec and per-stage split for every registered system."""
    dataset = kitti_like_dataset(
        num_sequences=num_sequences, frames_per_sequence=frames_per_sequence
    )
    out: Dict[str, Any] = {}
    for name, config in BENCH_SYSTEMS.items():
        if on_progress:
            on_progress(f"system {name}")
        system = build_system(config)
        stage_seconds: Dict[str, float] = {}
        frames = 0
        start = time.perf_counter()
        for sequence in dataset.sequences:
            pipeline = system.build_pipeline()
            pipeline.stages = [_TimedStage(s, stage_seconds) for s in pipeline.stages]
            pipeline.run_sequence(sequence)
            frames += sequence.num_frames
        elapsed = time.perf_counter() - start
        out[name] = {
            "fps": frames / elapsed,
            "frames": frames,
            "seconds": elapsed,
            "stage_seconds": {k: round(v, 6) for k, v in sorted(stage_seconds.items())},
        }
    return out


def _tracker_frames(num_frames: int, objects: int, seed: int = 0) -> List[Detections]:
    """Deterministic smoothly-moving detection stream (many live tracks)."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(0, 2000, size=(objects, 2))
    vel = rng.normal(scale=3.0, size=(objects, 2))
    sizes = rng.uniform(30, 120, size=objects)
    frames = []
    for t in range(num_frames):
        pos = base + vel * t
        boxes = np.concatenate([pos, pos + sizes[:, None]], axis=1)
        frames.append(
            Detections(
                boxes,
                rng.uniform(0.6, 1.0, size=objects),
                rng.integers(0, 2, size=objects),
            )
        )
    return frames


def _best_rate(fn: Callable[[], int], repeats: int) -> float:
    """Units/sec of ``fn`` (which returns its unit count), best of repeats."""
    best = np.inf
    units = 1
    for _ in range(repeats):
        start = time.perf_counter()
        units = fn()
        best = min(best, time.perf_counter() - start)
    return units / best


def bench_kernels(
    num_tracks: int = 60,
    num_frames: int = 40,
    repeats: int = 3,
    on_progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Vectorized-vs-scalar rates for the hot-path kernels.

    The tracker pair runs with ``num_tracks`` concurrent objects (the
    acceptance gate requires ≥2x at ≥50 tracks, so the default is 60).
    """
    frames = _tracker_frames(num_frames, num_tracks)
    out: Dict[str, Any] = {}

    def run_catdet(tracker_cls) -> int:
        tracker = tracker_cls(TrackerConfig(), image_size=(2100, 2100))
        for dets in frames:
            tracker.predict()
            tracker.update(dets)
        return len(frames)

    def run_sort(tracker_cls) -> int:
        tracker = tracker_cls(SortConfig(max_age=3))
        for dets in frames:
            tracker.update(dets)
        return len(frames)

    if on_progress:
        on_progress("kernel tracker_catdet")
    vec = _best_rate(lambda: run_catdet(CaTDetTracker), repeats)
    ref = _best_rate(lambda: run_catdet(ScalarCaTDetTracker), repeats)
    out["tracker_catdet"] = {
        "tracks": num_tracks,
        "vectorized_fps": vec,
        "scalar_fps": ref,
        "speedup": vec / ref,
    }

    if on_progress:
        on_progress("kernel tracker_sort")
    vec = _best_rate(lambda: run_sort(Sort), repeats)
    ref = _best_rate(lambda: run_sort(ScalarSort), repeats)
    out["tracker_sort"] = {
        "tracks": num_tracks,
        "vectorized_fps": vec,
        "scalar_fps": ref,
        "speedup": vec / ref,
    }

    # NMS over a crowded frame: clustered boxes so suppression does real work.
    rng = np.random.default_rng(1)
    centers = rng.uniform(0, 800, size=(60, 2))
    offsets = rng.normal(scale=12.0, size=(300, 2))
    pos = centers[rng.integers(0, 60, size=300)] + offsets
    sizes = rng.uniform(30, 90, size=(300, 1))
    nms_boxes = np.concatenate([pos, pos + sizes], axis=1)
    nms_scores = rng.uniform(0.1, 1.0, size=300)

    def run_nms(fn) -> int:
        for _ in range(20):
            fn(nms_boxes, nms_scores, 0.5)
        return 20

    if on_progress:
        on_progress("kernel nms")
    vec = _best_rate(lambda: run_nms(nms), repeats)
    ref = _best_rate(lambda: run_nms(scalar_nms), repeats)
    out["nms"] = {"boxes": 300, "vectorized_cps": vec, "scalar_cps": ref, "speedup": vec / ref}

    # Greedy merge on a mid-size region set (the refinement batching path).
    merge_boxes = np.concatenate(
        [
            rng.uniform(0, 1500, size=(48, 2)),
            np.zeros((48, 2)),
        ],
        axis=1,
    )
    merge_boxes[:, 2:] = merge_boxes[:, :2] + rng.uniform(40, 200, size=(48, 2))

    def run_merge(fn) -> int:
        for _ in range(5):
            fn(merge_boxes)
        return 5

    if on_progress:
        on_progress("kernel merge")
    vec = _best_rate(lambda: run_merge(greedy_merge_boxes), repeats)
    ref = _best_rate(lambda: run_merge(scalar_greedy_merge_boxes), repeats)
    out["merge"] = {"boxes": 48, "vectorized_cps": vec, "scalar_cps": ref, "speedup": vec / ref}
    return out


def bench_obs_overhead(
    frames_per_sequence: int = 60,
    repeats: int = 3,
    on_progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Instrumented-vs-plain engine throughput for the same workload.

    Runs the CaTDet pipeline over one synthetic sequence with and without
    :meth:`~repro.engine.stages.StagePipeline.instrument`, interleaved
    (so thermal/cache drift hits both sides equally) and best-of-repeats
    (so a GC pause can't sink one side).  The ``ratio`` —
    instrumented fps over plain fps — is what CI gates (≥ 0.97): the
    per-stage timing and frame counters must cost under ~3%.
    """
    from repro.obs.registry import MetricsRegistry

    if on_progress:
        on_progress("obs overhead")
    dataset = kitti_like_dataset(
        num_sequences=1, frames_per_sequence=frames_per_sequence
    )
    config = BENCH_SYSTEMS["catdet"]

    def run(instrumented: bool) -> float:
        system = build_system(config)
        frames = 0
        start = time.perf_counter()
        for sequence in dataset.sequences:
            pipeline = system.build_pipeline()
            if instrumented:
                pipeline.instrument(MetricsRegistry())
            pipeline.run_sequence(sequence)
            frames += sequence.num_frames
        return frames / (time.perf_counter() - start)

    plain = 0.0
    instrumented = 0.0
    for _ in range(repeats):
        plain = max(plain, run(False))
        instrumented = max(instrumented, run(True))
    return {
        "frames": frames_per_sequence,
        "repeats": repeats,
        "plain_fps": plain,
        "instrumented_fps": instrumented,
        "ratio": instrumented / plain,
    }


def bench_tune_sweep(
    workers: Optional[int] = None,
    on_progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Cold 12-point policy sweep: serial live compute vs fast tuning.

    The baseline re-runs the full engine for every grid point — the
    pre-compute/timing-split behavior.  The fast side is a cold
    ``tune_policy`` sweep over the same grid with a fresh cache: grid
    dedupe collapses the inert ``max_wait_ms`` axis at batch size 1, the
    first cold point records the shared compute trace, and the remaining
    points replay it across ``workers`` processes.  Both sides run in
    this process on this machine, so the ``speedup`` ratio transfers
    across CI runners and is gated like the kernel ratios.
    """
    import tempfile
    from dataclasses import replace

    from repro.api.session import Session
    from repro.api.spec import DatasetSpec, ServeSpec
    from repro.engine.scheduler import effective_cpu_count
    from repro.serve import LoadSpec, ServePolicy, ServiceModel

    if workers is None:
        workers = min(2, effective_cpu_count())
    spec = ServeSpec(
        system=SystemConfig("catdet", "resnet50", "resnet10a", detailed_ops=False),
        dataset=DatasetSpec("kitti", num_sequences=2, frames_per_sequence=60),
        load=LoadSpec(
            pattern="uniform", num_streams=4, rate_hz=10.0, frames_per_stream=50
        ),
        policy=ServePolicy(slo_ms=500.0),
        service=ServiceModel(invocation_overhead_ms=50.0, gops_per_second=1e6),
    )
    batch_grid = (1, 2, 4)
    wait_grid = (0.0, 10.0, 25.0, 50.0)
    grid = [(b, w) for b in batch_grid for w in wait_grid]

    if on_progress:
        on_progress("tune_sweep serial baseline")
    live = Session()  # no cache: every point is a full engine pass
    start = time.perf_counter()
    for batch, wait in grid:
        point = replace(
            spec,
            policy=replace(spec.policy, max_batch_size=batch, max_wait_ms=wait),
        )
        live.serve(point, use_cache=False)
    serial_seconds = time.perf_counter() - start

    if on_progress:
        on_progress(f"tune_sweep fast ({workers} workers)")
    with tempfile.TemporaryDirectory() as tmp:
        session = Session(cache_dir=tmp)
        start = time.perf_counter()
        result = session.tune_serve(
            spec,
            slo_p99_ms=300.0,
            batch_sizes=batch_grid,
            max_waits_ms=wait_grid,
            workers=workers,
        )
        fast_seconds = time.perf_counter() - start
        aliases = sum(1 for c in result.candidates if c.alias_of is not None)
    return {
        "grid_points": len(grid),
        "unique_points": len(grid) - aliases,
        "workers": workers,
        "serial_seconds": serial_seconds,
        "fast_seconds": fast_seconds,
        "speedup": serial_seconds / fast_seconds,
        "frames_replayed": session.frames_replayed,
    }


def run_bench(
    quick: bool = False,
    num_tracks: int = 60,
    on_progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the full harness and return the BENCH payload."""
    from repro.engine.scheduler import effective_cpu_count

    if quick:
        # Quick cuts repeats and the system-level frame counts, but keeps
        # the kernel workloads identical to the full run: the gated
        # speedup ratios must stay comparable to the committed baseline.
        systems = bench_systems(num_sequences=1, frames_per_sequence=20, on_progress=on_progress)
        kernels = bench_kernels(
            num_tracks=num_tracks, repeats=1, on_progress=on_progress
        )
        obs_overhead = bench_obs_overhead(
            frames_per_sequence=20, repeats=2, on_progress=on_progress
        )
    else:
        systems = bench_systems(num_sequences=2, frames_per_sequence=60, on_progress=on_progress)
        kernels = bench_kernels(num_tracks=num_tracks, on_progress=on_progress)
        obs_overhead = bench_obs_overhead(on_progress=on_progress)
    # The sweep workload is identical in quick and full mode for the same
    # reason the kernel workloads are: its speedup ratio is gated.
    tune_sweep = bench_tune_sweep(on_progress=on_progress)
    return {
        "schema": 1,
        "quick": quick,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": effective_cpu_count(),
            "machine": platform.machine(),
        },
        "systems": systems,
        "kernels": kernels,
        "obs_overhead": obs_overhead,
        "tune_sweep": tune_sweep,
    }


# --------------------------------------------------------------------------- #
# BENCH_<n>.json trajectory files
# --------------------------------------------------------------------------- #

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def list_bench_files(root: Path) -> List[Tuple[int, Path]]:
    """Committed trajectory entries under ``root``, sorted by index."""
    entries = []
    for path in root.glob("BENCH_*.json"):
        match = _BENCH_RE.match(path.name)
        if match:
            entries.append((int(match.group(1)), path))
    return sorted(entries)


def latest_bench(root: Path) -> Optional[Tuple[int, Dict[str, Any]]]:
    """The highest-index committed entry, parsed (None when none exist)."""
    entries = list_bench_files(root)
    if not entries:
        return None
    index, path = entries[-1]
    return index, json.loads(path.read_text())


def write_bench(root: Path, payload: Dict[str, Any]) -> Path:
    """Write the next ``BENCH_<n>.json`` under ``root``; returns its path."""
    entries = list_bench_files(root)
    index = entries[-1][0] + 1 if entries else 1
    payload = dict(payload, index=index)
    path = root / f"BENCH_{index}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _lookup(payload: Dict[str, Any], dotted: str) -> Optional[float]:
    node: Any = payload
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def check_regression(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Gated-metric regressions of ``current`` vs ``baseline``.

    Returns human-readable failure strings (empty = pass).  Only the
    machine-independent speedup ratios are gated; raw fps are recorded
    for trajectory context but never compared across machines.
    """
    failures = []
    for metric in GATED_METRICS:
        base = _lookup(baseline, metric)
        cur = _lookup(current, metric)
        if base is None or cur is None:
            continue
        floor = base * (1.0 - tolerance)
        if cur < floor:
            failures.append(
                f"{metric}: {cur:.2f}x is more than {tolerance:.0%} below "
                f"the committed baseline {base:.2f}x (floor {floor:.2f}x)"
            )
    return failures
