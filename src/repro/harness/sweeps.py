"""Parameter sweeps — the C-thresh tracker-ablation study (Figure 6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.core.config import SystemConfig
from repro.datasets.types import Dataset
from repro.harness.experiment import run_experiment
from repro.metrics.kitti_eval import HARD, DifficultyFilter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session

#: The paper's Figure 6 x-axis.
DEFAULT_CTHRESH_GRID = (0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6)


@dataclass(frozen=True)
class CThreshPoint:
    """One operating point of the Figure 6 sweep."""

    proposal_model: str
    with_tracker: bool
    c_thresh: float
    mean_ap: float
    mean_delay: float
    ops_gops: float


def cthresh_sweep(
    dataset: Dataset,
    proposal_models: Sequence[str] = ("resnet10a", "resnet10c", "resnet18"),
    c_values: Sequence[float] = DEFAULT_CTHRESH_GRID,
    *,
    refinement_model: str = "resnet50",
    difficulty: DifficultyFilter = HARD,
    beta: float = 0.8,
    workers: Optional[int] = 1,
    session: Optional["Session"] = None,
    on_progress: Optional[Callable[[int, int, str], None]] = None,
) -> List[CThreshPoint]:
    """Sweep the proposal network's output threshold, with/without tracker.

    Reproduces Figure 6: with the tracker, mAP is nearly flat in C-thresh;
    without it (plain cascade) mAP degrades and both variants' delay grows
    as fewer proposals reach the refinement network.  ``workers``
    parallelizes each operating point's dataset run across processes;
    ``session`` (a :class:`repro.api.Session`) serves revisited operating
    points from its result cache — re-running the same grid warm skips
    every pipeline execution.  ``on_progress(done, total, label)`` fires
    after each operating point.
    """
    if session is None:
        from repro.api.session import Session

        session = Session()
    total = len(proposal_models) * 2 * len(c_values)
    points: List[CThreshPoint] = []
    for proposal in proposal_models:
        for with_tracker in (True, False):
            for c in c_values:
                config = SystemConfig(
                    "catdet" if with_tracker else "cascade",
                    refinement_model,
                    proposal,
                    c_thresh=float(c),
                )
                result = run_experiment(
                    config, dataset, (difficulty,), workers=workers, session=session
                )
                evaluation = result.evaluation(difficulty.name)
                points.append(
                    CThreshPoint(
                        proposal_model=proposal,
                        with_tracker=with_tracker,
                        c_thresh=float(c),
                        mean_ap=evaluation.mean_ap(),
                        mean_delay=evaluation.mean_delay(beta),
                        ops_gops=result.ops_gops,
                    )
                )
                if on_progress is not None:
                    on_progress(len(points), total, config.label + f" C={c}")
    return points
