"""Multi-seed experiment replication: means and spread for every metric.

The simulation is stochastic, so single-seed numbers carry sampling noise.
:func:`run_replicated` reruns an experiment across seeds and aggregates the
headline metrics with their standard deviations — the honest way to compare
two systems whose mAPs differ by less than a point.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session

from repro.core.config import SystemConfig
from repro.datasets.types import Dataset
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.metrics.kitti_eval import HARD, MODERATE, DifficultyFilter


@dataclass(frozen=True)
class MetricSummary:
    """Mean and spread of one metric across seeds."""

    mean: float
    std: float
    values: Tuple[float, ...]

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        n = len(self.values)
        return self.std / np.sqrt(n) if n > 1 else float("nan")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f} ± {self.std:.3f}"


@dataclass
class ReplicatedResult:
    """Aggregated metrics of one system across seeds."""

    config: SystemConfig
    seeds: Tuple[int, ...]
    metrics: Dict[str, MetricSummary]
    runs: List[ExperimentResult]

    def metric(self, name: str) -> MetricSummary:
        try:
            return self.metrics[name]
        except KeyError:
            known = ", ".join(sorted(self.metrics))
            raise KeyError(f"unknown metric {name!r}; known: {known}") from None


def _summarize(values: Sequence[float]) -> MetricSummary:
    arr = np.asarray(values, dtype=np.float64)
    return MetricSummary(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        values=tuple(float(v) for v in arr),
    )


def run_replicated(
    config: SystemConfig,
    dataset: Dataset,
    seeds: Sequence[int] = (0, 1, 2),
    difficulties: Tuple[DifficultyFilter, ...] = (MODERATE, HARD),
    *,
    beta: float = 0.8,
    with_delay: bool = True,
    session: Optional["Session"] = None,
) -> ReplicatedResult:
    """Run ``config`` once per seed and aggregate the headline metrics.

    Only the detector-simulation seed varies; the dataset (ground truth)
    stays fixed, so the spread measures detector-noise sensitivity, not
    world-generation variance.  With a cached ``session``, growing the
    seed list reuses every seed already replicated.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    runs: List[ExperimentResult] = []
    for seed in seeds:
        runs.append(
            run_experiment(
                replace(config, seed=int(seed)),
                dataset,
                difficulties,
                with_delay=with_delay,
                session=session,
            )
        )

    metrics: Dict[str, MetricSummary] = {
        "ops_gops": _summarize([r.ops_gops for r in runs])
    }
    for diff in difficulties:
        metrics[f"mAP[{diff.name}]"] = _summarize(
            [r.mean_ap(diff.name) for r in runs]
        )
        if with_delay:
            metrics[f"mD@{beta}[{diff.name}]"] = _summarize(
                [r.mean_delay(diff.name, beta) for r in runs]
            )
    return ReplicatedResult(
        config=config, seeds=tuple(int(s) for s in seeds), metrics=metrics, runs=runs
    )


def compare_systems(
    a: ReplicatedResult, b: ReplicatedResult, metric: str
) -> Dict[str, float]:
    """Difference of one metric between two replicated systems.

    Returns the mean difference (a - b) and a paired z-score when the two
    results share their seed list (paired comparison removes most of the
    common noise).
    """
    ma, mb = a.metric(metric), b.metric(metric)
    diff = ma.mean - mb.mean
    out = {"difference": diff}
    if a.seeds == b.seeds and len(a.seeds) > 1:
        paired = np.asarray(ma.values) - np.asarray(mb.values)
        sd = paired.std(ddof=1)
        out["paired_z"] = float(
            paired.mean() / (sd / np.sqrt(len(paired)))
        ) if sd > 0 else float("inf") * np.sign(diff or 1)
    return out
