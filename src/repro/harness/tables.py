"""Plain-text table formatting for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float, None]


def _render(cell: Cell, precision: int) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    precision: int = 3,
    title: str = "",
) -> str:
    """Render a simple aligned text table.

    Floats are formatted to ``precision`` decimals; ``None`` renders as
    ``-`` (the paper's "/" for non-applicable cells).
    """
    rendered: List[List[str]] = [[_render(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)
