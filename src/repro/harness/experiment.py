"""Run one system on one dataset and collect every reported metric.

Since the API redesign this module is a thin compatibility layer over
:class:`repro.api.Session`: :func:`run_experiment` keeps its historical
signature but routes through a session, so callers that construct one
explicitly (``run_experiment(cfg, ds, session=my_session)``) get
content-addressed result caching for free.  New code should prefer the
declarative path::

    from repro.api import ExperimentSpec, Session
    Session(cache_dir=...).run(ExperimentSpec(config))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.core.config import SystemConfig
from repro.core.results import OpsAccount, SystemRunResult
from repro.datasets.types import Dataset
from repro.metrics.evaluate import EvaluationResult
from repro.metrics.kitti_eval import HARD, MODERATE, DifficultyFilter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session

GIGA = 1e9

#: Benchmark-default dataset sizes: scaled down from the full benchmarks to
#: keep a full table regeneration in minutes; pass bigger numbers for
#: publication-grade runs.
_KITTI_DEFAULT = (6, 100)         # sequences, frames each
_CITYPERSONS_DEFAULT = 30         # 30-frame snippets


def standard_kitti(
    num_sequences: int = _KITTI_DEFAULT[0],
    frames_per_sequence: int = _KITTI_DEFAULT[1],
) -> Dataset:
    """The shared KITTI-like evaluation dataset (memoized).

    Shim over the ``"kitti"`` dataset family — identical calls return the
    same object via :func:`repro.api.session.build_dataset`'s memo.
    """
    from repro.api.session import build_dataset
    from repro.api.spec import DatasetSpec

    return build_dataset(
        DatasetSpec(
            "kitti",
            num_sequences=num_sequences,
            frames_per_sequence=frames_per_sequence,
        )
    )


def standard_citypersons(num_sequences: int = _CITYPERSONS_DEFAULT) -> Dataset:
    """The shared CityPersons-like evaluation dataset (memoized shim)."""
    from repro.api.session import build_dataset
    from repro.api.spec import DatasetSpec

    return build_dataset(DatasetSpec("citypersons", num_sequences=num_sequences))


@dataclass
class ExperimentResult:
    """Everything the paper reports about one system on one dataset."""

    config: SystemConfig
    run: SystemRunResult
    evaluations: Dict[str, EvaluationResult]

    @property
    def label(self) -> str:
        return self.config.label

    @property
    def ops_gops(self) -> float:
        """Average per-frame operations in Gops."""
        return self.run.mean_ops_gops()

    @property
    def ops_account(self) -> OpsAccount:
        return self.run.mean_ops()

    def mean_timing(self):
        """Mean per-frame device timing (:class:`repro.core.results.FrameTiming`)
        when the config named a ``device``; ``None`` otherwise."""
        return self.run.mean_timing()

    @property
    def modeled_fps(self) -> Optional[float]:
        """Frames/s the modeled device sustains (``None`` without timing)."""
        timing = self.run.mean_timing()
        if timing is None or timing.total_seconds <= 0:
            return None
        return 1.0 / timing.total_seconds

    def mean_ap(self, difficulty: str = "hard", method: str = "r40") -> float:
        return self.evaluations[difficulty].mean_ap(method)

    def mean_delay(self, difficulty: str = "hard", beta: float = 0.8) -> float:
        return self.evaluations[difficulty].mean_delay(beta)

    def evaluation(self, difficulty: str) -> EvaluationResult:
        return self.evaluations[difficulty]


def run_experiment(
    config: SystemConfig,
    dataset: Dataset,
    difficulties: Tuple[DifficultyFilter, ...] = (MODERATE, HARD),
    *,
    with_delay: bool = True,
    workers: Optional[int] = 1,
    session: Optional["Session"] = None,
) -> ExperimentResult:
    """Run ``config`` over ``dataset`` and evaluate at each difficulty.

    ``workers`` is sequence-level parallelism (see
    :func:`repro.core.pipeline.run_on_dataset`); results are identical at
    any worker count.  ``session`` (optional) supplies the result cache —
    without one, every call computes.
    """
    if session is None:
        from repro.api.session import Session

        session = Session()
    return session.run_experiment(
        config, dataset, difficulties, with_delay=with_delay, workers=workers
    )
