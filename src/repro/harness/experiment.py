"""Run one system on one dataset and collect every reported metric."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

from repro.core.config import SystemConfig
from repro.core.pipeline import run_on_dataset
from repro.core.results import OpsAccount, SystemRunResult
from repro.datasets.citypersons import citypersons_like_dataset
from repro.datasets.kitti import kitti_like_dataset
from repro.datasets.types import Dataset
from repro.metrics.evaluate import EvaluationResult, evaluate_dataset
from repro.metrics.kitti_eval import HARD, MODERATE, DifficultyFilter

GIGA = 1e9

#: Benchmark-default dataset sizes: scaled down from the full benchmarks to
#: keep a full table regeneration in minutes; pass bigger numbers for
#: publication-grade runs.
_KITTI_DEFAULT = (6, 100)         # sequences, frames each
_CITYPERSONS_DEFAULT = 30         # 30-frame snippets


@lru_cache(maxsize=4)
def standard_kitti(
    num_sequences: int = _KITTI_DEFAULT[0],
    frames_per_sequence: int = _KITTI_DEFAULT[1],
) -> Dataset:
    """The shared KITTI-like evaluation dataset (cached)."""
    return kitti_like_dataset(
        num_sequences=num_sequences, frames_per_sequence=frames_per_sequence
    )


@lru_cache(maxsize=4)
def standard_citypersons(num_sequences: int = _CITYPERSONS_DEFAULT) -> Dataset:
    """The shared CityPersons-like evaluation dataset (cached)."""
    return citypersons_like_dataset(num_sequences=num_sequences)


@dataclass
class ExperimentResult:
    """Everything the paper reports about one system on one dataset."""

    config: SystemConfig
    run: SystemRunResult
    evaluations: Dict[str, EvaluationResult]

    @property
    def label(self) -> str:
        return self.config.label

    @property
    def ops_gops(self) -> float:
        """Average per-frame operations in Gops."""
        return self.run.mean_ops_gops()

    @property
    def ops_account(self) -> OpsAccount:
        return self.run.mean_ops()

    def mean_ap(self, difficulty: str = "hard", method: str = "r40") -> float:
        return self.evaluations[difficulty].mean_ap(method)

    def mean_delay(self, difficulty: str = "hard", beta: float = 0.8) -> float:
        return self.evaluations[difficulty].mean_delay(beta)

    def evaluation(self, difficulty: str) -> EvaluationResult:
        return self.evaluations[difficulty]


def run_experiment(
    config: SystemConfig,
    dataset: Dataset,
    difficulties: Tuple[DifficultyFilter, ...] = (MODERATE, HARD),
    *,
    with_delay: bool = True,
    workers: Optional[int] = 1,
) -> ExperimentResult:
    """Run ``config`` over ``dataset`` and evaluate at each difficulty.

    ``workers`` is sequence-level parallelism (see
    :func:`repro.core.pipeline.run_on_dataset`); results are identical at
    any worker count.
    """
    run = run_on_dataset(config, dataset, workers=workers)
    evaluations = {
        diff.name: evaluate_dataset(
            dataset, run.detections_by_sequence, diff, with_delay=with_delay
        )
        for diff in difficulties
    }
    return ExperimentResult(config=config, run=run, evaluations=evaluations)
