"""Experiment harness: standard datasets, runs, sweeps and table formatting.

Every benchmark in ``benchmarks/`` is a thin wrapper over this package, so
the paper's tables can also be regenerated programmatically::

    from repro.harness import run_experiment, standard_kitti, TABLE2_CONFIGS
    ds = standard_kitti()
    rows = [run_experiment(cfg, ds) for cfg in TABLE2_CONFIGS]
"""

from repro.harness.experiment import (
    ExperimentResult,
    run_experiment,
    standard_citypersons,
    standard_kitti,
)
from repro.harness.configs import (
    TABLE2_CONFIGS,
    TABLE4_PROPOSAL_MODELS,
    TABLE5_REFINEMENT_MODELS,
    TABLE6_CONFIGS,
    CITYPERSONS_INPUT_SCALE,
    table2_specs,
    table6_specs,
)
from repro.harness.calibration import (
    CalibrationRow,
    calibration_report,
    max_absolute_error,
)
from repro.harness.io import (
    config_from_dict,
    config_to_dict,
    experiment_from_dict,
    experiment_to_dict,
    load_experiment_summary,
    save_experiment,
)
from repro.harness.multiseed import (
    MetricSummary,
    ReplicatedResult,
    compare_systems,
    run_replicated,
)
from repro.harness.tables import format_table
from repro.harness.tuning import (
    TuningPoint,
    cheapest_cthresh_for_accuracy,
    cthresh_for_budget,
    sweep_operating_points,
)
from repro.harness.sweeps import CThreshPoint, cthresh_sweep

__all__ = [
    "ExperimentResult",
    "run_experiment",
    "standard_citypersons",
    "standard_kitti",
    "TABLE2_CONFIGS",
    "TABLE4_PROPOSAL_MODELS",
    "TABLE5_REFINEMENT_MODELS",
    "TABLE6_CONFIGS",
    "CITYPERSONS_INPUT_SCALE",
    "table2_specs",
    "table6_specs",
    "config_from_dict",
    "config_to_dict",
    "experiment_from_dict",
    "experiment_to_dict",
    "CalibrationRow",
    "calibration_report",
    "max_absolute_error",
    "MetricSummary",
    "ReplicatedResult",
    "compare_systems",
    "run_replicated",
    "format_table",
    "CThreshPoint",
    "cthresh_sweep",
    "load_experiment_summary",
    "save_experiment",
    "TuningPoint",
    "cheapest_cthresh_for_accuracy",
    "cthresh_for_budget",
    "sweep_operating_points",
]
