"""Experiment result serialization (JSON) for logging and post-hoc analysis.

Saves the numbers an experiment produced — per-frame op accounts, metric
summaries — without the bulky raw detections, so runs can be archived and
diffed cheaply.  Detections can optionally be included for full replay.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.core.config import SystemConfig
from repro.core.results import SystemRunResult
from repro.harness.experiment import ExperimentResult


def _config_dict(config: SystemConfig) -> Dict:
    return {
        "kind": config.kind,
        "refinement_model": config.refinement_model,
        "proposal_model": config.proposal_model,
        "c_thresh": config.c_thresh,
        "margin": config.margin,
        "seed": config.seed,
        "num_classes": config.num_classes,
        "input_scale": config.input_scale,
        "tracker": {
            "eta": config.tracker.eta,
            "iou_threshold": config.tracker.iou_threshold,
            "input_score_threshold": config.tracker.input_score_threshold,
            "motion_model": config.tracker.motion_model,
        },
    }


def _run_dict(run: SystemRunResult, *, include_detections: bool) -> Dict:
    ops = run.mean_ops()
    out: Dict = {
        "system_name": run.system_name,
        "mean_ops": {
            "proposal": ops.proposal,
            "refinement": ops.refinement,
            "refinement_from_tracker": ops.refinement_from_tracker,
            "refinement_from_proposal": ops.refinement_from_proposal,
            "total": ops.total,
        },
        "mean_regions_per_frame": run.mean_regions_per_frame(),
        "mean_coverage": run.mean_coverage(),
        "sequences": {},
    }
    for name, seq in run.sequences.items():
        entry: Dict = {"num_frames": seq.num_frames}
        if include_detections:
            entry["frames"] = [
                {
                    "boxes": frame.detections.boxes.tolist(),
                    "scores": frame.detections.scores.tolist(),
                    "labels": frame.detections.labels.tolist(),
                    "coverage": frame.coverage_fraction,
                    "num_regions": frame.num_regions,
                }
                for frame in seq.frames
            ]
        out["sequences"][name] = entry
    return out


def save_experiment(
    result: ExperimentResult,
    path: Union[str, Path],
    *,
    include_detections: bool = False,
    beta: float = 0.8,
) -> None:
    """Write an experiment's configuration and metrics as JSON.

    Parameters
    ----------
    result:
        The finished experiment.
    path:
        Destination file.
    include_detections:
        Also store every frame's detections (large; enables full replay of
        the metrics without re-running the systems).
    beta:
        Precision level for the recorded delay metric.
    """
    payload: Dict = {
        "format": "repro-experiment/1",
        "config": _config_dict(result.config),
        "label": result.label,
        "run": _run_dict(result.run, include_detections=include_detections),
        "metrics": {},
    }
    for name, evaluation in result.evaluations.items():
        metrics = {
            "mAP_r40": evaluation.mean_ap("r40"),
            "mAP_voc11": evaluation.mean_ap("voc11"),
            "per_class_ap": {
                ce.name: ce.ap() for ce in evaluation.per_class
            },
        }
        try:
            metrics[f"mD@{beta}"] = evaluation.mean_delay(beta)
            metrics[f"exit_mD@{beta}"] = evaluation.mean_exit_delay(beta)
        except ValueError:
            pass
        payload["metrics"][name] = metrics

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, allow_nan=True)


def load_experiment_summary(path: Union[str, Path]) -> Dict:
    """Load a saved experiment's JSON payload (plain dict).

    Raises :class:`ValueError` on unknown format versions.
    """
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("format") != "repro-experiment/1":
        raise ValueError(
            f"unsupported experiment format: {payload.get('format')!r}"
        )
    return payload
