"""Experiment result serialization (JSON) for logging and post-hoc analysis.

Two formats live here:

* ``repro-experiment/1`` — the compact human-oriented summary written by
  :func:`save_experiment` (mean ops, metrics; detections optional).
* ``repro-experiment-full/1`` — the *lossless* round trip used by the
  result cache (:mod:`repro.api.cache`): every frame's boxes, scores,
  labels and op account plus the full evaluation state, such that
  :func:`experiment_from_dict` rebuilds an
  :class:`~repro.harness.experiment.ExperimentResult` bit-identical to
  the original (floats survive exactly via JSON's shortest-repr round
  trip, including ``-Infinity`` miss markers in delay records).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

import numpy as np

from repro.core.config import SystemConfig, config_from_dict, config_to_dict
from repro.core.results import (
    FrameResult,
    FrameTiming,
    OpsAccount,
    SequenceResult,
    SystemRunResult,
)
from repro.detections import Detections
from repro.harness.experiment import ExperimentResult
from repro.metrics.delay import TrackDelayRecord
from repro.metrics.evaluate import ClassEvaluation, EvaluationResult

FULL_FORMAT = "repro-experiment-full/1"

__all__ = [
    "config_to_dict",
    "config_from_dict",
    "sequence_result_to_dict",
    "sequence_result_from_dict",
    "run_to_dict",
    "run_from_dict",
    "evaluation_to_dict",
    "evaluation_from_dict",
    "experiment_to_dict",
    "experiment_from_dict",
    "save_experiment",
    "load_experiment_summary",
]


def _config_dict(config: SystemConfig) -> Dict:
    # Lossless since the API redesign: previously dropped ``detailed_ops``
    # and the tracker lifecycle fields, which broke cache round trips.
    return config_to_dict(config)


def _ops_dict(ops: OpsAccount) -> Dict[str, float]:
    return {
        "proposal": ops.proposal,
        "refinement": ops.refinement,
        "refinement_from_tracker": ops.refinement_from_tracker,
        "refinement_from_proposal": ops.refinement_from_proposal,
    }


def _ops_from_dict(data: Dict[str, float]) -> OpsAccount:
    return OpsAccount(
        proposal=data["proposal"],
        refinement=data["refinement"],
        refinement_from_tracker=data["refinement_from_tracker"],
        refinement_from_proposal=data["refinement_from_proposal"],
    )


def _frame_dict(frame: FrameResult) -> Dict[str, Any]:
    out = {
        "frame": frame.frame,
        "boxes": frame.detections.boxes.tolist(),
        "scores": frame.detections.scores.tolist(),
        "labels": frame.detections.labels.tolist(),
        "ops": _ops_dict(frame.ops),
        "num_regions": frame.num_regions,
        "coverage": frame.coverage_fraction,
    }
    if frame.track_ids is not None:
        # Optional key: pre-query-layer payloads stay loadable.
        out["track_ids"] = np.asarray(frame.track_ids, dtype=np.int64).tolist()
    if frame.timing is not None:
        # Optional key keeps pre-cost-layer payloads loadable while the
        # cluster protocol ships timing losslessly between hosts.
        out["timing"] = {
            "gpu_seconds": frame.timing.gpu_seconds,
            "cpu_seconds": frame.timing.cpu_seconds,
            "num_launches": frame.timing.num_launches,
        }
    return out


def _frame_from_dict(data: Dict[str, Any]) -> FrameResult:
    timing = data.get("timing")
    track_ids = data.get("track_ids")
    return FrameResult(
        track_ids=(
            None if track_ids is None else np.asarray(track_ids, dtype=np.int64)
        ),
        frame=data["frame"],
        detections=Detections(
            boxes=np.asarray(data["boxes"], dtype=np.float64).reshape(-1, 4),
            scores=np.asarray(data["scores"], dtype=np.float64),
            labels=np.asarray(data["labels"], dtype=np.int64),
        ),
        ops=_ops_from_dict(data["ops"]),
        num_regions=data["num_regions"],
        coverage_fraction=data["coverage"],
        timing=None if timing is None else FrameTiming(
            gpu_seconds=timing["gpu_seconds"],
            cpu_seconds=timing["cpu_seconds"],
            num_launches=timing["num_launches"],
        ),
    )


def sequence_result_to_dict(seq: SequenceResult) -> Dict[str, Any]:
    """Lossless standalone :class:`SequenceResult` payload.

    The unit the cluster protocol ships between hosts (one sequence's
    frames is one work shard — see :mod:`repro.cluster.protocol`).
    """
    return {
        "sequence_name": seq.sequence_name,
        "frames": [_frame_dict(frame) for frame in seq.frames],
    }


def sequence_result_from_dict(data: Dict[str, Any]) -> SequenceResult:
    """Inverse of :func:`sequence_result_to_dict` (bit-identical)."""
    return SequenceResult(
        sequence_name=data["sequence_name"],
        frames=[_frame_from_dict(f) for f in data["frames"]],
    )


def run_to_dict(run: SystemRunResult, *, include_detections: bool = True) -> Dict:
    """Serialize a :class:`SystemRunResult`; lossless when detections kept."""
    ops = run.mean_ops()
    out: Dict = {
        "system_name": run.system_name,
        "mean_ops": {**_ops_dict(ops), "total": ops.total},
        "mean_regions_per_frame": run.mean_regions_per_frame(),
        "mean_coverage": run.mean_coverage(),
        "sequences": {},
    }
    mean_timing = run.mean_timing()
    if mean_timing is not None:
        # Derived summary (rebuilt from per-frame records on load).
        out["mean_timing"] = {
            "gpu_seconds": mean_timing.gpu_seconds,
            "cpu_seconds": mean_timing.cpu_seconds,
            "total_seconds": mean_timing.total_seconds,
            "num_launches": mean_timing.num_launches,
        }
    for name, seq in run.sequences.items():
        entry: Dict = {"num_frames": seq.num_frames}
        if include_detections:
            entry["frames"] = [_frame_dict(frame) for frame in seq.frames]
        out["sequences"][name] = entry
    return out


def run_from_dict(data: Dict) -> SystemRunResult:
    """Inverse of :func:`run_to_dict` (requires stored detections)."""
    run = SystemRunResult(system_name=data["system_name"])
    for name, entry in data["sequences"].items():
        if "frames" not in entry:
            raise ValueError(
                f"sequence {name!r} was saved without detections; "
                "a full round trip needs include_detections=True"
            )
        run.sequences[name] = SequenceResult(
            sequence_name=name,
            frames=[_frame_from_dict(f) for f in entry["frames"]],
        )
    return run


def evaluation_to_dict(evaluation: EvaluationResult) -> Dict:
    """Serialize an :class:`EvaluationResult` losslessly."""
    return {
        "difficulty": evaluation.difficulty,
        "per_class": [
            {
                "label": ce.label,
                "name": ce.name,
                "scores": ce.scores.tolist(),
                "tp": ce.tp.astype(int).tolist(),
                "num_gt": ce.num_gt,
                "tracks": [
                    {
                        "frames": list(t.frames),
                        "matched_scores": list(t.matched_scores),
                        "ever_cared": t.ever_cared,
                    }
                    for t in ce.tracks
                ],
            }
            for ce in evaluation.per_class
        ],
    }


def evaluation_from_dict(data: Dict) -> EvaluationResult:
    """Inverse of :func:`evaluation_to_dict`."""
    per_class: List[ClassEvaluation] = []
    for entry in data["per_class"]:
        per_class.append(
            ClassEvaluation(
                label=entry["label"],
                name=entry["name"],
                scores=np.asarray(entry["scores"], dtype=np.float64),
                tp=np.asarray(entry["tp"], dtype=bool),
                num_gt=entry["num_gt"],
                tracks=[
                    TrackDelayRecord(
                        frames=list(t["frames"]),
                        matched_scores=[float(s) for s in t["matched_scores"]],
                        ever_cared=t["ever_cared"],
                    )
                    for t in entry["tracks"]
                ],
            )
        )
    return EvaluationResult(difficulty=data["difficulty"], per_class=per_class)


def experiment_to_dict(result: ExperimentResult) -> Dict:
    """Lossless ``repro-experiment-full/1`` payload for the result cache."""
    return {
        "format": FULL_FORMAT,
        "config": config_to_dict(result.config),
        "label": result.label,
        "run": run_to_dict(result.run, include_detections=True),
        "evaluations": {
            name: evaluation_to_dict(ev) for name, ev in result.evaluations.items()
        },
    }


def experiment_from_dict(data: Dict) -> ExperimentResult:
    """Rebuild a bit-identical :class:`ExperimentResult` from its payload."""
    if data.get("format") != FULL_FORMAT:
        raise ValueError(
            f"unsupported experiment format: {data.get('format')!r}, "
            f"expected {FULL_FORMAT!r}"
        )
    return ExperimentResult(
        config=config_from_dict(data["config"]),
        run=run_from_dict(data["run"]),
        evaluations={
            name: evaluation_from_dict(ev)
            for name, ev in data["evaluations"].items()
        },
    )


def save_experiment(
    result: ExperimentResult,
    path: Union[str, Path],
    *,
    include_detections: bool = False,
    beta: float = 0.8,
) -> None:
    """Write an experiment's configuration and metrics as JSON.

    Parameters
    ----------
    result:
        The finished experiment.
    path:
        Destination file.
    include_detections:
        Also store every frame's detections (large; enables full replay of
        the metrics without re-running the systems).
    beta:
        Precision level for the recorded delay metric.
    """
    payload: Dict = {
        "format": "repro-experiment/1",
        "config": _config_dict(result.config),
        "label": result.label,
        "run": run_to_dict(result.run, include_detections=include_detections),
        "metrics": {},
    }
    for name, evaluation in result.evaluations.items():
        metrics = {
            "mAP_r40": evaluation.mean_ap("r40"),
            "mAP_voc11": evaluation.mean_ap("voc11"),
            "per_class_ap": {
                ce.name: ce.ap() for ce in evaluation.per_class
            },
        }
        try:
            metrics[f"mD@{beta}"] = evaluation.mean_delay(beta)
            metrics[f"exit_mD@{beta}"] = evaluation.mean_exit_delay(beta)
        except ValueError:
            pass
        payload["metrics"][name] = metrics

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, allow_nan=True)


def load_experiment_summary(path: Union[str, Path]) -> Dict:
    """Load a saved experiment's JSON payload (plain dict).

    Raises :class:`ValueError` on unknown format versions.
    """
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("format") != "repro-experiment/1":
        raise ValueError(
            f"unsupported experiment format: {payload.get('format')!r}"
        )
    return payload
