"""The system configurations evaluated in the paper's tables.

``TABLE*_CONFIGS`` are the raw :class:`SystemConfig` grids; the
``table*_specs`` builders lift them into full declarative
:class:`~repro.api.ExperimentSpec` grids (system + dataset + eval +
execution) ready for :meth:`repro.api.Session.run_many`, which dedupes
and caches them.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.api.spec import DatasetSpec, EvalSpec, ExecSpec, ExperimentSpec
from repro.core.config import SystemConfig

#: CityPersons frames are processed at reduced resolution (the paper's
#: ResNet-50 op count of 597 G implies ~0.72x linear scale relative to the
#: native 2048x1024 — see EXPERIMENTS.md).
CITYPERSONS_INPUT_SCALE = 0.72

#: Table 2: the six KITTI headline systems.
TABLE2_CONFIGS = (
    SystemConfig("single", "resnet50"),
    SystemConfig("cascade", "resnet50", "resnet10a"),
    SystemConfig("catdet", "resnet50", "resnet10a"),
    SystemConfig("cascade", "resnet50", "resnet10b"),
    SystemConfig("catdet", "resnet50", "resnet10b"),
)

#: Table 4: proposal-network choices (refinement fixed to ResNet-50).
TABLE4_PROPOSAL_MODELS = ("resnet18", "resnet10a", "resnet10b", "resnet10c")

#: Table 5: refinement-network choices (proposal fixed to ResNet-10b).
TABLE5_REFINEMENT_MODELS = ("resnet18", "resnet50", "vgg16")

#: Table 6: CityPersons systems (Person-only dataset, reduced resolution).
TABLE6_CONFIGS = tuple(
    SystemConfig(
        kind,
        "resnet50",
        proposal,
        num_classes=1,
        input_scale=CITYPERSONS_INPUT_SCALE,
    )
    if proposal
    else SystemConfig(
        kind, "resnet50", num_classes=1, input_scale=CITYPERSONS_INPUT_SCALE
    )
    for kind, proposal in (
        ("single", None),
        ("cascade", "resnet10a"),
        ("catdet", "resnet10a"),
        ("cascade", "resnet10b"),
        ("catdet", "resnet10b"),
    )
)


def table2_specs(
    num_sequences: Optional[int] = None,
    frames_per_sequence: Optional[int] = None,
    *,
    workers: int = 1,
) -> Tuple[ExperimentSpec, ...]:
    """Table 2 as a declarative spec grid (KITTI, moderate+hard, delay)."""
    dataset = DatasetSpec(
        "kitti",
        num_sequences=num_sequences,
        frames_per_sequence=frames_per_sequence,
    )
    execution = ExecSpec(workers=workers)
    return tuple(
        ExperimentSpec(system=config, dataset=dataset, exec=execution)
        for config in TABLE2_CONFIGS
    )


def table6_specs(
    num_sequences: Optional[int] = None,
    *,
    workers: int = 1,
) -> Tuple[ExperimentSpec, ...]:
    """Table 6 as a spec grid (CityPersons, moderate, VOC-11 AP, no delay)."""
    dataset = DatasetSpec("citypersons", num_sequences=num_sequences)
    evaluation = EvalSpec(
        difficulties=("moderate",), ap_method="voc11", with_delay=False
    )
    execution = ExecSpec(workers=workers)
    return tuple(
        ExperimentSpec(system=config, dataset=dataset, eval=evaluation, exec=execution)
        for config in TABLE6_CONFIGS
    )
