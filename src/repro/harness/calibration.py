"""Calibration report: compare the model zoo's behavior to paper targets.

The simulated detector profiles in :mod:`repro.simdet.zoo` are calibrated
so single-model Faster R-CNN accuracies land near the paper's Tables 4/5.
This module measures where they actually land on a given dataset — the
tool used during calibration and a regression tripwire afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence as Seq, Tuple

from repro.core.config import SystemConfig
from repro.datasets.types import Dataset
from repro.harness.experiment import run_experiment
from repro.metrics.kitti_eval import HARD, MODERATE

#: Paper single-model Faster R-CNN targets (KITTI Hard mAP, Tables 4/5).
PAPER_SINGLE_MODEL_HARD_MAP: Dict[str, float] = {
    "resnet50": 0.740,
    "vgg16": 0.742,
    "resnet18": 0.687,
    "resnet10a": 0.606,
    "resnet10b": 0.564,
    "resnet10c": 0.542,
}


@dataclass(frozen=True)
class CalibrationRow:
    """One model's measured-vs-target accuracy."""

    model: str
    measured_map: float
    target_map: Optional[float]

    @property
    def error(self) -> Optional[float]:
        if self.target_map is None:
            return None
        return self.measured_map - self.target_map


def calibration_report(
    dataset: Dataset,
    models: Seq[str] = tuple(PAPER_SINGLE_MODEL_HARD_MAP),
    *,
    difficulty: str = "hard",
    seed: int = 0,
) -> Tuple[CalibrationRow, ...]:
    """Measure single-model mAP for each model and diff against the paper.

    Returns one row per model; ``error`` is measured − target (None when
    the paper reports no value for that model).
    """
    rows = []
    for model in models:
        result = run_experiment(
            SystemConfig("single", model, seed=seed), dataset, (MODERATE, HARD)
        )
        rows.append(
            CalibrationRow(
                model=model,
                measured_map=result.mean_ap(difficulty),
                target_map=PAPER_SINGLE_MODEL_HARD_MAP.get(model),
            )
        )
    return tuple(rows)


def max_absolute_error(rows: Seq[CalibrationRow]) -> float:
    """Largest |measured − target| over rows with a target."""
    errors = [abs(r.error) for r in rows if r.error is not None]
    if not errors:
        raise ValueError("no rows with targets")
    return max(errors)
