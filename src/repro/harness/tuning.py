"""Automatic operating-point tuning.

§4.3 of the paper identifies two thresholds that "significantly affect the
inference speed" — the proposal network's output threshold (C-thresh) and
the tracker's input threshold.  These helpers search those knobs for a
target operation budget or a target accuracy, so deployments don't hand
tune them.

All searches accept a :class:`repro.api.Session`; with a cached session,
repeated searches over overlapping grids (budget then accuracy, coarse
then fine) recompute nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Sequence as Seq, Tuple

from repro.core.config import SystemConfig
from repro.datasets.types import Dataset
from repro.harness.experiment import run_experiment
from repro.metrics.kitti_eval import HARD, DifficultyFilter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Session


@dataclass(frozen=True)
class TuningPoint:
    """One evaluated operating point of the tuning search."""

    c_thresh: float
    ops_gops: float
    mean_ap: float


def sweep_operating_points(
    config: SystemConfig,
    dataset: Dataset,
    c_values: Seq[float] = (0.02, 0.05, 0.1, 0.2, 0.4, 0.6),
    *,
    difficulty: DifficultyFilter = HARD,
    max_sequences: Optional[int] = None,
    workers: Optional[int] = 1,
    session: Optional["Session"] = None,
) -> Tuple[TuningPoint, ...]:
    """Evaluate ``config`` at each C-thresh, returning sorted points."""
    if config.kind == "single":
        raise ValueError("single-model systems have no C-thresh to tune")
    eval_dataset = dataset if max_sequences is None else _subset(dataset, max_sequences)
    points = []
    for c in sorted(c_values):
        candidate = replace(config, c_thresh=float(c))
        result = run_experiment(
            candidate,
            eval_dataset,
            (difficulty,),
            with_delay=False,
            workers=workers,
            session=session,
        )
        points.append(
            TuningPoint(
                c_thresh=float(c),
                ops_gops=result.ops_gops,
                mean_ap=result.evaluation(difficulty.name).mean_ap(),
            )
        )
    return tuple(points)


def _subset(dataset: Dataset, n: int) -> Dataset:
    return Dataset(
        name=dataset.name,
        classes=dataset.classes,
        sequences=dataset.sequences[:n],
        labeled_frames=dataset.labeled_frames,
    )


def cthresh_for_budget(
    config: SystemConfig,
    dataset: Dataset,
    budget_gops: float,
    c_values: Seq[float] = (0.02, 0.05, 0.1, 0.2, 0.4, 0.6),
    *,
    difficulty: DifficultyFilter = HARD,
    max_sequences: Optional[int] = None,
    workers: Optional[int] = 1,
    session: Optional["Session"] = None,
) -> Optional[TuningPoint]:
    """Most accurate operating point within a per-frame op budget.

    Returns ``None`` when no candidate fits (even the highest threshold is
    over budget — pick a smaller proposal network instead).
    """
    if budget_gops <= 0:
        raise ValueError(f"budget_gops must be positive, got {budget_gops}")
    points = sweep_operating_points(
        config, dataset, c_values,
        difficulty=difficulty, max_sequences=max_sequences, workers=workers,
        session=session,
    )
    affordable = [p for p in points if p.ops_gops <= budget_gops]
    if not affordable:
        return None
    return max(affordable, key=lambda p: p.mean_ap)


def cheapest_cthresh_for_accuracy(
    config: SystemConfig,
    dataset: Dataset,
    min_map: float,
    c_values: Seq[float] = (0.02, 0.05, 0.1, 0.2, 0.4, 0.6),
    *,
    difficulty: DifficultyFilter = HARD,
    max_sequences: Optional[int] = None,
    workers: Optional[int] = 1,
    session: Optional["Session"] = None,
) -> Optional[TuningPoint]:
    """Cheapest operating point reaching at least ``min_map``."""
    if not (0.0 < min_map <= 1.0):
        raise ValueError(f"min_map must lie in (0, 1], got {min_map}")
    points = sweep_operating_points(
        config, dataset, c_values,
        difficulty=difficulty, max_sequences=max_sequences, workers=workers,
        session=session,
    )
    qualified = [p for p in points if p.mean_ap >= min_map]
    if not qualified:
        return None
    return min(qualified, key=lambda p: p.ops_gops)
