"""Unified device cost-model layer.

One calibrated :class:`DeviceProfile` (the ``T = alpha * W + b``
constants of paper Appendix I, plus CPU overheads) feeds one
:class:`CostModel`, and every timing consumer in the repo derives from
it: the legacy Table-7 estimators (:mod:`repro.gpu.timing`), the
engine's per-frame :class:`~repro.engine.stages.TimingAccountingStage`
(``SystemConfig(device=...)``), and the serving simulator's
:class:`~repro.serve.server.ServiceModel` (``ServeSpec(device=...)``).

Profiles are frozen, JSON-round-trippable, and registered by name
(:data:`DEVICE_PROFILES`; built-ins ``"titanx"``, ``"abstract"`` and the
heterogeneous serving pair ``"edge"`` / ``"datacenter"``, extend with
:func:`register_device`).  Every profile carries a ``cost_per_hour``
dollar proxy, so device-time converts to the cost-per-frame objective
fleet tuning minimizes.
"""

from repro.core.results import FrameTiming
from repro.cost.model import CostModel
from repro.cost.profile import (
    ABSTRACT,
    DATACENTER,
    DEFAULT_DEVICE,
    DEVICE_PROFILES,
    EDGE,
    GIGA,
    TITANX,
    DeviceProfile,
    get_device,
    profile_from_service_rates,
    register_device,
)

__all__ = [
    "ABSTRACT",
    "CostModel",
    "DATACENTER",
    "DEFAULT_DEVICE",
    "DEVICE_PROFILES",
    "DeviceProfile",
    "EDGE",
    "FrameTiming",
    "GIGA",
    "TITANX",
    "get_device",
    "profile_from_service_rates",
    "register_device",
]
