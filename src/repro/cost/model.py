"""The cost model: per-frame ops and invocation counts → seconds.

One :class:`CostModel` wraps one :class:`~repro.cost.profile.DeviceProfile`
and answers every timing question in the repo under the paper's linear
model ``T = alpha * W + b`` per launch (Appendix I):

* :meth:`kernel_seconds` — GPU time of one launch of ``W`` MACs.
* :meth:`single_model_timing` / :meth:`catdet_timing` — the Table-7
  estimators (one full-frame launch vs proposal + greedily-merged region
  launches); the legacy :mod:`repro.gpu.timing` functions are thin shims
  over these.
* :meth:`frame_timing` — per-frame latency from a *measured*
  :class:`~repro.core.results.OpsAccount` plus the frame's actual region
  geometry; what the engine's
  :class:`~repro.engine.stages.TimingAccountingStage` charges.
* :meth:`batch_seconds` — service time of one micro-batch from measured
  invocation counts and MACs; what the serving simulator's
  :class:`~repro.serve.server.ServiceModel` charges.

All four share the profile's constants, so the offline tables, the
engine's latency column and the serving simulator can no longer drift
apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.boxes.box import area
from repro.boxes.merge import MergeCostModel, greedy_merge_boxes
from repro.core.results import FrameTiming, OpsAccount
from repro.cost.profile import DeviceProfile, get_device


@dataclass(frozen=True)
class CostModel:
    """Timing queries against one calibrated :class:`DeviceProfile`."""

    profile: DeviceProfile

    @classmethod
    def for_device(cls, device) -> "CostModel":
        """A cost model for a registered device name (or a profile)."""
        return cls(get_device(device))

    # ------------------------------------------------------------------ #
    # Primitive quantities
    # ------------------------------------------------------------------ #

    def compute_seconds(self, macs: float) -> float:
        """Pure compute time ``alpha * W`` (no launch overhead)."""
        if macs < 0:
            raise ValueError(f"macs must be >= 0, got {macs}")
        return self.profile.alpha * macs

    def kernel_seconds(self, macs: float) -> float:
        """GPU time for one launch of ``macs`` multiply-accumulates."""
        if macs < 0:
            raise ValueError(f"macs must be >= 0, got {macs}")
        return self.profile.alpha * macs + self.profile.launch_overhead_seconds

    def merge_cost_model(self) -> MergeCostModel:
        """The equivalent area-based model for greedy box merging."""
        return MergeCostModel(
            alpha=self.profile.alpha * self.profile.trunk_macs_per_pixel,
            base_area=self.profile.base_crop_pixels,
        )

    # ------------------------------------------------------------------ #
    # Serving: micro-batch service time from measured quantities
    # ------------------------------------------------------------------ #

    def batch_seconds(self, invocations: int, macs: float, frames: int = 0) -> float:
        """Service time of one batch: fixed cost per invocation, compute
        at the profile's throughput, plus per-frame CPU overhead."""
        p = self.profile
        return (
            invocations * (p.launch_overhead_seconds + p.cpu_invocation_overhead)
            + p.alpha * macs
            + frames * p.cpu_frame_overhead
        )

    # ------------------------------------------------------------------ #
    # Table-7 estimators (geometry-driven, the legacy gpu.timing API)
    # ------------------------------------------------------------------ #

    def single_model_timing(self, frame_macs: float) -> FrameTiming:
        """Timing of a single-model detector: one full-frame launch."""
        return FrameTiming(
            gpu_seconds=self.kernel_seconds(frame_macs),
            cpu_seconds=self.profile.cpu_frame_overhead,
            num_launches=1,
        )

    def catdet_timing(
        self,
        proposal_macs: float,
        region_boxes: np.ndarray,
        refinement_head_macs: float,
        *,
        merge: bool = True,
    ) -> FrameTiming:
        """Timing of one CaTDet frame.

        Parameters
        ----------
        proposal_macs:
            Full-frame cost of the proposal network.
        region_boxes : (N, 4) array
            Regions of interest fed to the refinement network (tracker +
            proposal sources, margin already applied).
        refinement_head_macs:
            Total RoI-head cost for the frame's proposals.
        merge:
            Apply the paper's greedy merging before timing regions.
            Merging *increases* the computed workload (merged rectangles
            cover more area) but reduces launch overhead — the
            Appendix I trade-off.
        """
        p = self.profile
        region_boxes = np.asarray(region_boxes, dtype=np.float64).reshape(-1, 4)
        if merge and region_boxes.shape[0] > 1:
            region_boxes, _ = greedy_merge_boxes(region_boxes, self.merge_cost_model())

        gpu = self.kernel_seconds(proposal_macs)  # proposal network launch
        for region_area in area(region_boxes):
            gpu += self.kernel_seconds(region_area * p.trunk_macs_per_pixel)
        if refinement_head_macs > 0:
            gpu += p.alpha * refinement_head_macs  # batched RoI heads

        launches = 1 + region_boxes.shape[0]
        cpu = p.cpu_frame_overhead + p.cpu_invocation_overhead * launches
        return FrameTiming(gpu_seconds=gpu, cpu_seconds=cpu, num_launches=launches)

    # ------------------------------------------------------------------ #
    # Engine: per-frame latency from the measured ops account
    # ------------------------------------------------------------------ #

    def frame_timing(
        self,
        ops: OpsAccount,
        *,
        region_boxes: Optional[np.ndarray] = None,
        full_frame: bool = False,
        merge: bool = True,
    ) -> FrameTiming:
        """Estimated latency of one executed frame.

        Charges the frame's *measured* MAC account at the profile's
        throughput; launch overheads come from the launch count the
        frame's structure implies — one full-frame launch per network
        that ran (``full_frame=True``), or one proposal launch plus one
        per (greedily merged) refinement region.  A frame that ran no
        network (a key-frame system coasting the tracker) costs CPU
        frame overhead only.
        """
        p = self.profile
        if full_frame or region_boxes is None:
            launches = int(ops.proposal > 0) + int(ops.refinement > 0)
            if launches == 0:
                return FrameTiming(
                    gpu_seconds=0.0,
                    cpu_seconds=p.cpu_frame_overhead,
                    num_launches=0,
                )
            gpu = 0.0
            if ops.proposal > 0:
                gpu += self.kernel_seconds(ops.proposal)
            if ops.refinement > 0:
                gpu += self.kernel_seconds(ops.refinement)
            return FrameTiming(
                gpu_seconds=gpu,
                cpu_seconds=p.cpu_frame_overhead,
                num_launches=launches,
            )
        boxes = np.asarray(region_boxes, dtype=np.float64).reshape(-1, 4)
        if merge and boxes.shape[0] > 1:
            boxes, _ = greedy_merge_boxes(boxes, self.merge_cost_model())
        launches = int(ops.proposal > 0) + boxes.shape[0]
        gpu = p.alpha * ops.total + launches * p.launch_overhead_seconds
        cpu = p.cpu_frame_overhead + p.cpu_invocation_overhead * launches
        return FrameTiming(gpu_seconds=gpu, cpu_seconds=cpu, num_launches=launches)
