"""Device profiles: the calibrated constants of the linear cost model.

The paper models GPU time of a CNN workload ``W`` as ``T = alpha * W + b``
(Appendix I): a throughput reciprocal ``alpha``, plus a fixed per-launch
overhead ``b`` it estimates as "roughly the execution time of a 400x400
crop".  The CPU side (data loading, NMS, tracker, framework wrapping) adds
a per-frame constant and a per-launch term.  A :class:`DeviceProfile`
captures exactly those calibrated constants for one device, and is the
single source of truth every timing consumer in the repo derives from —
the legacy :mod:`repro.gpu.timing` estimators, the engine's
:class:`~repro.engine.stages.TimingAccountingStage`, and the serving
simulator's :class:`~repro.serve.server.ServiceModel`.

Built-in profiles
-----------------
``"titanx"``
    The Maxwell Titan X the paper measured on: ``alpha`` calibrated from
    the single-model operating point (254.3 Gops in 0.159 s of kernel
    time), the 400x400-crop launch overhead, and the measured CPU
    overheads.  These constants previously lived in
    ``repro/gpu/timing.py``; they are defined *only* here now.
``"abstract"``
    A neutral accelerator reproducing the serving layer's historical
    defaults (2 ms per batched invocation, 2000 Gops/s sustained, no CPU
    overhead).  The default wherever no device is named.
``"edge"`` / ``"datacenter"``
    The heterogeneous-fleet pair the serving tuner sweeps: a slow cheap
    edge box and a fast expensive datacenter accelerator.  Their
    ``cost_per_hour`` is a modeled dollar proxy (arbitrary but mutually
    consistent units) that turns "engine-busy seconds" into the
    cost-per-frame objective ``repro fleet tune`` minimizes.

Third-party scenarios register their own with :func:`register_device`::

    from repro.cost import DeviceProfile, register_device

    register_device(DeviceProfile(name="edge-tpu", alpha=2.5e-12, ...))
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Union

from repro.api.registry import Registry

GIGA = 1e9

#: Titan X effective throughput implied by the paper's single-model
#: measurement: 254.3 Gops of ResNet-50 Faster R-CNN in 0.159 s of GPU
#: kernel time — ~1.6 Tops/s.  THE calibration constant of Appendix I.
TITANX_ALPHA = 0.159 / (254.3 * GIGA)

PROFILE_FORMAT = "repro-device-profile/1"


@dataclass(frozen=True)
class DeviceProfile:
    """Calibrated constants of one device's ``T = alpha * W + b`` model.

    Parameters
    ----------
    name:
        Registry name (``"titanx"``, ``"abstract"``, ...).
    alpha:
        Seconds per multiply-accumulate (throughput reciprocal).
    base_crop_pixels:
        The fixed per-launch overhead ``b`` expressed as the equivalent
        workload of a square crop with this many pixels (400*400 per the
        paper).
    trunk_macs_per_pixel:
        Backbone cost density converting crop pixels to ops — also the
        density used when costing region geometry for greedy merging.
    cpu_frame_overhead:
        Per-frame CPU seconds (data loading, framework wrapping).
    cpu_invocation_overhead:
        Per-launch CPU seconds (tensor slicing, NMS shares).
    cost_per_hour:
        Modeled price of keeping one such device allocated for an hour
        (a dollar *proxy* in arbitrary but mutually consistent units —
        what matters is edge vs datacenter ratios, not absolute money).
        Fleet tuning divides allocated device-time priced at this rate
        by frames served to get cost-per-frame.
    """

    name: str
    alpha: float
    base_crop_pixels: float = 400.0 * 400.0
    trunk_macs_per_pixel: float = 66_000.0
    cpu_frame_overhead: float = 0.0
    cpu_invocation_overhead: float = 0.0
    cost_per_hour: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"name must be a non-empty string, got {self.name!r}")
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self.base_crop_pixels < 0 or self.trunk_macs_per_pixel < 0:
            raise ValueError("workload parameters must be >= 0")
        if self.cpu_frame_overhead < 0 or self.cpu_invocation_overhead < 0:
            raise ValueError("CPU overheads must be >= 0")
        if self.cost_per_hour <= 0:
            raise ValueError(f"cost_per_hour must be positive, got {self.cost_per_hour}")

    # ------------------------------------------------------------------ #
    # Derived quantities (single definitions — consumers never recompute)
    # ------------------------------------------------------------------ #

    @property
    def launch_overhead_seconds(self) -> float:
        """The ``b`` term in seconds (GPU-side cost of one launch)."""
        return self.alpha * self.base_crop_pixels * self.trunk_macs_per_pixel

    @property
    def gops_per_second(self) -> float:
        """Sustained throughput ``1 / alpha`` in Gops/s."""
        return 1.0 / (self.alpha * GIGA)

    @property
    def invocation_overhead_ms(self) -> float:
        """Total fixed cost per invocation (launch + CPU share), in ms."""
        return (self.launch_overhead_seconds + self.cpu_invocation_overhead) * 1e3

    @property
    def cost_per_second(self) -> float:
        """The hourly allocation price as a per-second rate."""
        return self.cost_per_hour / 3600.0

    # ------------------------------------------------------------------ #
    # JSON round trip
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": PROFILE_FORMAT,
            "name": self.name,
            "alpha": self.alpha,
            "base_crop_pixels": self.base_crop_pixels,
            "trunk_macs_per_pixel": self.trunk_macs_per_pixel,
            "cpu_frame_overhead": self.cpu_frame_overhead,
            "cpu_invocation_overhead": self.cpu_invocation_overhead,
            "cost_per_hour": self.cost_per_hour,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DeviceProfile":
        fmt = data.get("format", PROFILE_FORMAT)
        if fmt != PROFILE_FORMAT:
            raise ValueError(
                f"unsupported device-profile format {fmt!r}, expected {PROFILE_FORMAT!r}"
            )
        payload = {k: v for k, v in data.items() if k != "format"}
        known = set(cls.__dataclass_fields__)
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown DeviceProfile fields: {sorted(unknown)}")
        return cls(**payload)

    def to_json(self, *, indent=None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DeviceProfile":
        return cls.from_dict(json.loads(text))


def profile_from_service_rates(
    invocation_overhead_ms: float,
    gops_per_second: float,
    *,
    name: str = "custom",
    cost_per_hour: float = 1.0,
) -> DeviceProfile:
    """An ad-hoc profile from serving-layer rates (uncalibrated devices).

    Inverts the derived quantities: ``alpha`` from the throughput,
    ``base_crop_pixels`` sized so one launch costs exactly the requested
    overhead.  CPU overheads are zero — explicit serving rates predate
    the cost layer and never modeled a CPU side.
    """
    if gops_per_second <= 0:
        raise ValueError(
            f"gops_per_second must be positive, got {gops_per_second}"
        )
    if invocation_overhead_ms < 0:
        raise ValueError(
            f"invocation_overhead_ms must be >= 0, got {invocation_overhead_ms}"
        )
    alpha = 1.0 / (gops_per_second * GIGA)
    return DeviceProfile(
        name=name,
        alpha=alpha,
        base_crop_pixels=(invocation_overhead_ms / 1e3) / alpha,
        trunk_macs_per_pixel=1.0,
        cost_per_hour=cost_per_hour,
    )


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

#: Device name → :class:`DeviceProfile`.
DEVICE_PROFILES = Registry("device profile")


def register_device(profile: DeviceProfile, *, override: bool = False) -> DeviceProfile:
    """Register ``profile`` under its own name; returns it for chaining."""
    if not isinstance(profile, DeviceProfile):
        raise TypeError(
            f"expected a DeviceProfile, got {type(profile).__name__}"
        )
    DEVICE_PROFILES.register(profile.name, profile, override=override)
    return profile


def get_device(device: Union[str, DeviceProfile]) -> DeviceProfile:
    """Resolve a device name (or pass a profile through)."""
    if isinstance(device, DeviceProfile):
        return device
    return DEVICE_PROFILES.get(device)


#: The paper's Maxwell Titan X (Appendix I / Table 7) — calibrated from
#: the same constants ``repro/gpu/timing.py`` historically hardcoded.
TITANX = register_device(
    DeviceProfile(
        name="titanx",
        alpha=TITANX_ALPHA,
        base_crop_pixels=400.0 * 400.0,
        trunk_macs_per_pixel=66_000.0,  # ResNet-50 C4 trunk on KITTI
        cpu_frame_overhead=0.034,
        cpu_invocation_overhead=0.001,
    )
)

#: Neutral accelerator reproducing the serving layer's historical
#: defaults: 2 ms per batched invocation, 2000 Gops/s, no CPU model.
ABSTRACT = register_device(
    profile_from_service_rates(2.0, 2000.0, name="abstract")
)

#: Heterogeneous-fleet pair for replica placement and fleet tuning: the
#: edge box is ~16x slower but 8x cheaper per hour than the datacenter
#: accelerator, so which mix is cheapest genuinely depends on the load
#: (a calm fleet of edge boxes beats an idle datacenter card; a bursty
#: one doesn't).
EDGE = register_device(
    profile_from_service_rates(6.0, 500.0, name="edge", cost_per_hour=0.5)
)

DATACENTER = register_device(
    profile_from_service_rates(1.5, 8000.0, name="datacenter", cost_per_hour=4.0)
)

DEFAULT_DEVICE = ABSTRACT.name
