"""Scenario queries: temporal-logic event search over detection/track streams.

The query layer turns the repo's detection systems into a queryable
event system.  A :class:`~repro.query.spec.QuerySpec` describes a
scenario — "a car appears and persists >= N frames", "a pedestrian
enters this region and then disappears" — as frame-local propositions
(:mod:`repro.query.props`) combined with temporal operators
(:mod:`repro.query.spec`).  Specs compile to a small phase automaton
evaluated strictly online (:mod:`repro.query.automaton`), one
:class:`~repro.core.results.FrameResult` at a time, emitting
frames-of-interest windows with per-phase match provenance; an
independent offline reference plus multi-camera conjunction and the
window-table report live in :mod:`repro.query.offline`.

Entry points: ``repro query`` on the CLI,
:meth:`repro.api.session.Session.query` for cached offline evaluation,
and ``ServeSpec(query=...)`` / ``DetectionServer(query=...)`` for
per-stream online evaluation inside the serving loop.
"""

from repro.query.automaton import (
    FramesOfInterest,
    Phase,
    QueryEvaluator,
    QueryWindow,
    compile_phases,
)
from repro.query.offline import QueryReport, conjoin, evaluate_frames, scene_of_stream
from repro.query.props import (
    AllOf,
    AnyOf,
    BoxInRegion,
    ClassPresent,
    CountAtLeast,
    FrameState,
    Not,
    Prop,
    Region,
    TrackBook,
    TrackEnteredRegion,
    TrackLeftRegion,
    TrackPersisted,
    prop_from_dict,
)
from repro.query.spec import (
    Always,
    Eventually,
    QuerySpec,
    TemporalExpr,
    Then,
    expr_from_dict,
)

__all__ = [
    "AllOf",
    "Always",
    "AnyOf",
    "BoxInRegion",
    "ClassPresent",
    "CountAtLeast",
    "Eventually",
    "FrameState",
    "FramesOfInterest",
    "Not",
    "Phase",
    "Prop",
    "QueryEvaluator",
    "QueryReport",
    "QuerySpec",
    "QueryWindow",
    "Region",
    "TemporalExpr",
    "Then",
    "TrackBook",
    "TrackEnteredRegion",
    "TrackLeftRegion",
    "TrackPersisted",
    "compile_phases",
    "conjoin",
    "evaluate_frames",
    "expr_from_dict",
    "prop_from_dict",
    "scene_of_stream",
]
