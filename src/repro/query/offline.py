"""Offline reference evaluation, multi-camera conjunction, and reports.

:func:`evaluate_frames` re-derives a query's frames-of-interest from a
fully materialized frame sequence with an independent dynamic program —
same matching semantics as the online automaton
(:mod:`repro.query.automaton`), different algorithm.  The Hypothesis
property suite holds the two equivalent on random specs and streams;
production paths may use either (the online evaluator for serving, this
module for cached results).

:func:`conjoin` intersects per-stream window sets — the multi-camera
conjunction: frames during which *every* camera of a scene has a match
window open.

:class:`QueryReport` renders the shared window table.  Its ``format()``
output is byte-identical whether the windows came from a served run or
an offline replay — the acceptance gate of the serving integration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.results import FrameResult
from repro.harness.tables import format_table
from repro.query.automaton import FramesOfInterest, QueryWindow, compile_phases
from repro.query.props import FrameState, TrackBook
from repro.query.spec import QuerySpec


def evaluate_frames(
    spec: QuerySpec,
    frames: Sequence[FrameResult],
    *,
    stream: str = "",
) -> FramesOfInterest:
    """Reference evaluation over a fully materialized stream.

    Runs an O(T^2 * K) dynamic program per emitted window: for each tick
    ``f`` and phase ``k``, the best (start, completion-trace) over all
    ways phases ``0..k`` can complete with phase ``k`` exactly at ``f``.
    The earliest full completion emits; the scan restarts past it.
    """
    phases = compile_phases(spec.expr)
    K = len(phases)
    T = len(frames)
    frame_numbers = [int(fr.frame) for fr in frames]

    # Phase-proposition truth timelines, computed causally once.
    book = TrackBook()
    pvals = np.zeros((K, T), dtype=bool)
    for t, fr in enumerate(frames):
        ids = fr.track_ids
        if ids is None:
            ids = np.full(len(fr.detections), -1, dtype=np.int64)
        book.step(fr.detections, ids)
        state = FrameState(fr.detections, ids, book)
        for k, ph in enumerate(phases):
            pvals[k, t] = ph.prop.evaluate(state)

    windows: List[QueryWindow] = []
    s = 0
    while s < T:
        match = _earliest_match(phases, pvals, s, T)
        if match is None:
            break
        start, trace = match
        end = trace[-1]
        windows.append(
            QueryWindow(
                stream=stream,
                start=frame_numbers[start],
                end=frame_numbers[end],
                start_tick=start,
                end_tick=end,
                phases=tuple(frame_numbers[t] for t in trace),
            )
        )
        s = end + 1

    return FramesOfInterest(
        stream=stream,
        query=spec.name,
        fingerprint=spec.fingerprint,
        windows=windows,
        frames_observed=T,
    )


def _earliest_match(phases, pvals, s: int, T: int):
    """Earliest-completion match for the scan starting at tick ``s``.

    Returns ``(start, trace)`` (the minimal ``(start,) + trace`` among
    candidates completing at the earliest possible tick) or ``None``.
    """
    K = len(phases)
    # best[k][f]: minimal (start, c_0, ..., c_k) tuple with phase k
    # completing exactly at tick f, or None.
    best: List[List[Optional[Tuple[int, ...]]]] = [[None] * T for _ in range(K)]

    ph0 = phases[0]
    for f in range(s, T):
        if ph0.deadline is not None and (f - s + 1) > ph0.deadline:
            break
        if ph0.mode == "eventually":
            if pvals[0, f]:
                best[0][f] = (f, f)
        else:
            lo = f - ph0.hold + 1
            if lo >= s and bool(pvals[0, lo : f + 1].all()):
                best[0][f] = (lo, f)

    for k in range(1, K):
        ph = phases[k]
        for f in range(s + k, T):
            if ph.mode == "eventually":
                if not pvals[k, f]:
                    continue
                c_hi = f - 1
            else:
                lo = f - ph.hold + 1
                if lo <= s or not bool(pvals[k, lo : f + 1].all()):
                    continue
                c_hi = lo - 1
            c_lo = s if ph.deadline is None else max(s, f - ph.deadline)
            cand = None
            for c in range(c_lo, c_hi + 1):
                prev = best[k - 1][c]
                if prev is None:
                    continue
                tup = prev + (f,)
                if cand is None or tup < cand:
                    cand = tup
            best[k][f] = cand

    for f in range(s, T):
        tup = best[K - 1][f]
        if tup is not None:
            return tup[0], tup[1:]
    return None


def conjoin(
    window_sets: Iterable[List[QueryWindow]],
) -> List[Tuple[int, int]]:
    """Frame intervals covered by a window in *every* given set.

    The multi-camera conjunction: given each stream's frames-of-interest
    over the same scene, the returned ``(start, end)`` frame intervals
    are those during which all streams simultaneously have a match
    window open.  Empty when any stream has no windows.
    """
    current: Optional[List[Tuple[int, int]]] = None
    for windows in window_sets:
        intervals = _normalize([(w.start, w.end) for w in windows])
        current = intervals if current is None else _intersect(current, intervals)
        if not current:
            return []
    return current or []


def _normalize(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Sort and merge overlapping/adjacent closed intervals."""
    out: List[Tuple[int, int]] = []
    for start, end in sorted(intervals):
        if out and start <= out[-1][1] + 1:
            out[-1] = (out[-1][0], max(out[-1][1], end))
        else:
            out.append((start, end))
    return out


def _intersect(
    a: List[Tuple[int, int]], b: List[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    out: List[Tuple[int, int]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo <= hi:
            out.append((lo, hi))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return out


def scene_of_stream(stream: str) -> str:
    """The scene a serve stream watches.

    The load generator names streams ``s<i>:<sequence>``; streams
    sharing the sequence suffix are cameras on the same scene.  Names
    without the prefix are their own scene.
    """
    _, sep, scene = stream.partition(":")
    return scene if sep else stream


@dataclass
class QueryReport:
    """Frames-of-interest across streams, plus per-scene conjunctions.

    Built identically from served or offline evaluation; ``format()``
    output is byte-for-byte the same for the same windows, which is what
    the serve-vs-offline determinism test pins.
    """

    query: str
    fingerprint: str
    streams: Dict[str, FramesOfInterest] = field(default_factory=dict)
    conjunctions: Dict[str, List[Tuple[int, int]]] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        spec: QuerySpec,
        by_stream: Dict[str, FramesOfInterest],
        *,
        scene_of=scene_of_stream,
    ) -> "QueryReport":
        """Assemble the report; conjunctions cover scenes with >= 2 cameras."""
        ordered = {name: by_stream[name] for name in sorted(by_stream)}
        scenes: Dict[str, List[str]] = {}
        for name in ordered:
            scenes.setdefault(scene_of(name), []).append(name)
        conjunctions = {
            scene: conjoin(ordered[name].windows for name in members)
            for scene, members in sorted(scenes.items())
            if len(members) >= 2
        }
        return cls(
            query=spec.name,
            fingerprint=spec.fingerprint,
            streams=ordered,
            conjunctions=conjunctions,
        )

    @property
    def total_windows(self) -> int:
        return sum(len(foi.windows) for foi in self.streams.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "query": self.query,
            "fingerprint": self.fingerprint,
            "streams": {name: foi.to_dict() for name, foi in self.streams.items()},
            "conjunctions": {
                scene: [list(iv) for iv in ivs]
                for scene, ivs in self.conjunctions.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QueryReport":
        return cls(
            query=data["query"],
            fingerprint=data["fingerprint"],
            streams={
                name: FramesOfInterest.from_dict(foi)
                for name, foi in data["streams"].items()
            },
            conjunctions={
                scene: [(int(iv[0]), int(iv[1])) for iv in ivs]
                for scene, ivs in data["conjunctions"].items()
            },
        )

    def format(self) -> str:
        """The frames-of-interest window table (plus conjunctions)."""
        rows = []
        for name, foi in self.streams.items():
            if not foi.windows:
                rows.append([name, None, None, None, "-"])
            for w in foi.windows:
                rows.append(
                    [
                        name,
                        w.start,
                        w.end,
                        w.end - w.start + 1,
                        " ".join(str(p) for p in w.phases),
                    ]
                )
        out = [
            format_table(
                ["stream", "start", "end", "frames", "phase completions"],
                rows,
                title=(
                    f"Query '{self.query}' [{self.fingerprint[:12]}]: "
                    f"{self.total_windows} window(s) over "
                    f"{len(self.streams)} stream(s)"
                ),
            )
        ]
        if self.conjunctions:
            crows = []
            for scene, intervals in self.conjunctions.items():
                if not intervals:
                    crows.append([scene, None, None, None])
                for lo, hi in intervals:
                    crows.append([scene, lo, hi, hi - lo + 1])
            out.append("")
            out.append(
                format_table(
                    ["scene", "start", "end", "frames"],
                    crows,
                    title="Multi-camera conjunction (all cameras firing)",
                )
            )
        return "\n".join(out)
