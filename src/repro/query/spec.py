"""Temporal scenario specifications — frozen, fingerprinted, JSON-exact.

A :class:`QuerySpec` wraps one temporal expression over frame-local
propositions (:mod:`repro.query.props`):

``Eventually(p, within=k)``
    ``p`` holds on some frame, within the first ``k`` frames of its
    search window (``within=None`` = unbounded).
``Always(p, frames=n, within=k)``
    ``p`` holds on ``n`` consecutive frames; the run *completes* within
    ``k`` frames of the search-window start.
``Then(steps)``
    The steps match strictly in order: each step's search window opens
    on the frame *after* the previous step completed.

A bare proposition used where a step is expected means
``Eventually(prop)``.  Negation is the frame-local
:class:`~repro.query.props.Not` (e.g. ``Always(Not(p), frames=n)`` =
"p stays false for n frames").

Matching semantics (shared bit-for-bit by the online automaton and the
offline reference — see :mod:`repro.query.automaton` and
:mod:`repro.query.offline`): windows are *earliest-completion*, ties
broken by earliest start then lexicographically-earliest per-step
completion trace, and non-overlapping — after a match ends at frame
``e``, the next search starts at ``e + 1``.

Like :class:`~repro.api.spec.ExperimentSpec`, specs are frozen
dataclasses with exact JSON round trips and a sha256 content
:attr:`~QuerySpec.fingerprint`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

from repro.query.props import Prop, prop_from_dict

QUERY_SPEC_FORMAT = "repro-query-spec/1"


class TemporalExpr:
    """Base class of the temporal operators."""

    kind = "?"

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError


StepLike = Union[TemporalExpr, Prop]


def _as_step(step: StepLike) -> TemporalExpr:
    """A bare proposition means ``Eventually(prop)``."""
    if isinstance(step, Prop):
        return Eventually(step)
    if isinstance(step, Then):
        raise TypeError("Then cannot nest inside Then; pass a flat step tuple")
    if isinstance(step, TemporalExpr):
        return step
    raise TypeError(
        f"expected a proposition or temporal step, got {type(step).__name__}"
    )


def _check_within(within: Optional[int]) -> Optional[int]:
    if within is None:
        return None
    within = int(within)
    if within < 1:
        raise ValueError(f"within must be >= 1 frame, got {within}")
    return within


@dataclass(frozen=True)
class Eventually(TemporalExpr):
    """``prop`` holds on some frame of the step's search window."""

    prop: Prop
    within: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.prop, Prop):
            raise TypeError(
                f"Eventually wraps a proposition, got {type(self.prop).__name__}"
            )
        object.__setattr__(self, "within", _check_within(self.within))

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "eventually", "prop": self.prop.to_dict(), "within": self.within}


@dataclass(frozen=True)
class Always(TemporalExpr):
    """``prop`` holds on ``frames`` consecutive frames."""

    prop: Prop
    frames: int
    within: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.prop, Prop):
            raise TypeError(
                f"Always wraps a proposition, got {type(self.prop).__name__}"
            )
        if int(self.frames) < 1:
            raise ValueError(f"frames must be >= 1, got {self.frames}")
        object.__setattr__(self, "frames", int(self.frames))
        object.__setattr__(self, "within", _check_within(self.within))
        if self.within is not None and self.within < self.frames:
            raise ValueError(
                f"within={self.within} can never fit an always-run of "
                f"{self.frames} frames"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "always",
            "prop": self.prop.to_dict(),
            "frames": self.frames,
            "within": self.within,
        }


@dataclass(frozen=True)
class Then(TemporalExpr):
    """The steps match strictly in order (sequencing operator)."""

    steps: Tuple[TemporalExpr, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        steps = tuple(_as_step(s) for s in self.steps)
        if len(steps) < 2:
            raise ValueError(f"Then needs at least two steps, got {len(steps)}")
        object.__setattr__(self, "steps", steps)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "then", "steps": [s.to_dict() for s in self.steps]}


def expr_from_dict(data: Dict[str, Any]) -> TemporalExpr:
    """Reconstruct a temporal expression from its tagged dict.

    A dict whose ``kind`` names a *proposition* is accepted as shorthand
    for ``Eventually(prop)``, mirroring the constructor coercion.
    """
    kind = data.get("kind")
    if kind == "eventually":
        return Eventually(prop=prop_from_dict(data["prop"]), within=data.get("within"))
    if kind == "always":
        return Always(
            prop=prop_from_dict(data["prop"]),
            frames=data["frames"],
            within=data.get("within"),
        )
    if kind == "then":
        return Then(steps=tuple(expr_from_dict(s) for s in data["steps"]))
    return Eventually(prop_from_dict(data))


@dataclass(frozen=True)
class QuerySpec:
    """One named scenario query: a temporal expression plus metadata.

    ``name`` labels reports and sink records; it is part of the content
    fingerprint (two differently-named copies of one expression are
    different queries to the cache, exactly as ``ExperimentSpec`` treats
    its sections).
    """

    name: str
    expr: TemporalExpr

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "expr", _as_step(self.expr) if not isinstance(self.expr, Then) else self.expr)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": QUERY_SPEC_FORMAT,
            "name": self.name,
            "expr": self.expr.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QuerySpec":
        fmt = data.get("format", QUERY_SPEC_FORMAT)
        if fmt != QUERY_SPEC_FORMAT:
            raise ValueError(
                f"unsupported query-spec format {fmt!r}, expected {QUERY_SPEC_FORMAT!r}"
            )
        if "name" not in data or "expr" not in data:
            raise ValueError("query spec requires 'name' and 'expr'")
        return cls(name=data["name"], expr=expr_from_dict(data["expr"]))

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "QuerySpec":
        return cls.from_dict(json.loads(text))

    @property
    def fingerprint(self) -> str:
        """Stable content address of the query (canonical-JSON sha256)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
