"""Compile specs to phase automata; evaluate them online, one frame at a time.

A temporal expression normalizes to a linear chain of :class:`Phase`
records (``prop``, ``mode``, ``hold``, ``deadline``).  The online
:class:`QueryEvaluator` runs the chain as a small NFA over a stream of
:class:`~repro.core.results.FrameResult` values — strictly causal, no
buffering, no lookahead — and emits :class:`QueryWindow` frames-of-
interest with per-phase match provenance.

Matching semantics (the contract shared with the offline reference in
:mod:`repro.query.offline`, property-tested for equivalence):

* Ticks are 0-based positions in the observed stream; windows report
  the *frame numbers* observed at the boundary ticks.
* Phase 0 searches from the scan start ``s`` (tick 0, or one past the
  previous match).  An ``eventually`` phase completes at any tick ``f``
  with its proposition true; an ``always`` phase at any ``f`` whose last
  ``hold`` ticks are all true with the run inside the scan.  A phase-0
  deadline ``d`` requires ``f - s + 1 <= d``.
* Phase ``k > 0`` anchors at phase ``k-1``'s completion ``c`` and must
  complete strictly later; its deadline requires ``f - c <= d``.  Every
  completion *forks*: the evaluator keeps waiting for later completions
  of the same phase, because a later anchor can be the only one that
  satisfies a downstream deadline.
* The first tick at which any full match completes emits exactly one
  window: among the candidates completing there, the earliest start
  wins, then the lexicographically earliest completion trace.  All
  partial state is then discarded and the scan restarts on the next
  tick — windows never overlap.

The live state is bounded by spec constants (per phase: one partial
match per distinct (run, anchor-within-deadline) pair), never by stream
length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.results import FrameResult
from repro.query.props import FrameState, TrackBook
from repro.query.spec import Always, Eventually, QuerySpec, TemporalExpr, Then


@dataclass(frozen=True)
class Phase:
    """One step of the normalized chain."""

    prop: Any  # repro.query.props.Prop
    mode: str  # "eventually" | "always"
    hold: int  # consecutive true ticks required (1 for eventually)
    deadline: Optional[int]  # frames allowed from the anchor (None = unbounded)


def compile_phases(expr: TemporalExpr) -> Tuple[Phase, ...]:
    """Normalize a temporal expression to its linear phase chain."""
    steps = expr.steps if isinstance(expr, Then) else (expr,)
    phases = []
    for step in steps:
        if isinstance(step, Eventually):
            phases.append(Phase(step.prop, "eventually", 1, step.within))
        elif isinstance(step, Always):
            phases.append(Phase(step.prop, "always", step.frames, step.within))
        else:
            raise TypeError(f"unsupported temporal step {type(step).__name__}")
    return tuple(phases)


@dataclass(frozen=True)
class QueryWindow:
    """One emitted frames-of-interest window, with match provenance.

    ``start`` / ``end`` are frame numbers of the underlying sequence;
    ``start_tick`` / ``end_tick`` the 0-based stream positions; and
    ``phases`` the frame number at which each phase of the chain
    completed (the last equals ``end``).
    """

    stream: str
    start: int
    end: int
    start_tick: int
    end_tick: int
    phases: Tuple[int, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stream": self.stream,
            "start": self.start,
            "end": self.end,
            "start_tick": self.start_tick,
            "end_tick": self.end_tick,
            "phases": list(self.phases),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QueryWindow":
        return cls(
            stream=data["stream"],
            start=int(data["start"]),
            end=int(data["end"]),
            start_tick=int(data["start_tick"]),
            end_tick=int(data["end_tick"]),
            phases=tuple(int(p) for p in data["phases"]),
        )


@dataclass
class FramesOfInterest:
    """All windows one evaluator emitted over one stream."""

    stream: str
    query: str
    fingerprint: str
    windows: List[QueryWindow] = field(default_factory=list)
    frames_observed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stream": self.stream,
            "query": self.query,
            "fingerprint": self.fingerprint,
            "frames_observed": self.frames_observed,
            "windows": [w.to_dict() for w in self.windows],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FramesOfInterest":
        return cls(
            stream=data["stream"],
            query=data["query"],
            fingerprint=data["fingerprint"],
            frames_observed=int(data["frames_observed"]),
            windows=[QueryWindow.from_dict(w) for w in data["windows"]],
        )


class _Partial:
    """A live partial match waiting at phase ``k`` (k >= 1)."""

    __slots__ = ("k", "anchor", "run", "start", "trace")

    def __init__(self, k: int, anchor: int, run: int, start: int, trace: Tuple[int, ...]):
        self.k = k
        self.anchor = anchor
        self.run = run
        self.start = start
        self.trace = trace

    def rank(self) -> Tuple[int, ...]:
        return (self.start,) + self.trace


class QueryEvaluator:
    """Online, strictly causal evaluation of one query over one stream.

    Feed one :class:`~repro.core.results.FrameResult` at a time via
    :meth:`observe`; each call returns the window completed at that
    frame, if any.  Clone with :meth:`per_stream` for multi-stream
    engines — the same protocol the serving layer uses for trackers.
    """

    def __init__(self, spec: QuerySpec, stream: str = ""):
        self.spec = spec
        self.stream = stream
        self.phases = compile_phases(spec.expr)
        self.book = TrackBook()
        self._tick = 0
        self._frame_numbers: List[int] = []
        self._windows: List[QueryWindow] = []
        self._partials: List[_Partial] = []
        self._run0 = 0
        self._scan_start = 0

    def per_stream(self, stream: str) -> "QueryEvaluator":
        """A fresh evaluator for one stream of a multi-stream engine."""
        return QueryEvaluator(self.spec, stream)

    @property
    def windows(self) -> List[QueryWindow]:
        return list(self._windows)

    @property
    def frames_observed(self) -> int:
        return self._tick

    def finish(self) -> FramesOfInterest:
        """Freeze the emitted windows (the evaluator stays usable)."""
        return FramesOfInterest(
            stream=self.stream,
            query=self.spec.name,
            fingerprint=self.spec.fingerprint,
            windows=list(self._windows),
            frames_observed=self._tick,
        )

    def observe(
        self,
        result: FrameResult,
        track_ids: Optional[np.ndarray] = None,
    ) -> Optional[QueryWindow]:
        """Consume one frame; return the window it completed, if any."""
        if track_ids is None:
            track_ids = result.track_ids
        self.book.step(result.detections, track_ids if track_ids is not None
                       else np.full(len(result.detections), -1, dtype=np.int64))
        state = FrameState(result.detections, track_ids, self.book)
        pvals = [ph.prop.evaluate(state) for ph in self.phases]

        f = self._tick
        self._tick += 1
        self._frame_numbers.append(int(result.frame))

        phases = self.phases
        last = len(phases) - 1
        candidates: List[Tuple[int, Tuple[int, ...]]] = []
        spawned: List[_Partial] = []
        survivors: List[_Partial] = []

        # Advance partial matches waiting at phases 1..K-1.
        for st in self._partials:
            ph = phases[st.k]
            if ph.deadline is not None and f - st.anchor > ph.deadline:
                continue  # no completion at f or later can meet the deadline
            p = pvals[st.k]
            if ph.mode == "eventually":
                if p:
                    self._complete(st.k, st.start, st.trace, f, last,
                                   candidates, spawned)
                survivors.append(st)
            else:
                # Cap the run at ``hold``: beyond it, behavior is identical
                # (complete on every true tick, reset on false), and the cap
                # keeps the dedup key space finite.
                st.run = min(st.run + 1, ph.hold) if p else 0
                if st.run >= ph.hold:
                    self._complete(st.k, st.start, st.trace, f, last,
                                   candidates, spawned)
                survivors.append(st)

        # Seed / advance phase 0 (anchored at the scan start).
        ph0 = phases[0]
        s = self._scan_start
        within0 = ph0.deadline is None or (f - s + 1) <= ph0.deadline
        if ph0.mode == "eventually":
            if pvals[0] and within0:
                self._complete(0, f, (), f, last, candidates, spawned)
        else:
            self._run0 = min(self._run0 + 1, ph0.hold) if pvals[0] else 0
            if self._run0 >= ph0.hold and within0:
                self._complete(0, f - ph0.hold + 1, (), f, last,
                               candidates, spawned)

        if candidates:
            start, trace = min(candidates, key=lambda c: (c[0],) + c[1])
            window = QueryWindow(
                stream=self.stream,
                start=self._frame_numbers[start],
                end=self._frame_numbers[f],
                start_tick=start,
                end_tick=f,
                phases=tuple(self._frame_numbers[t] for t in trace),
            )
            self._windows.append(window)
            self._partials = []
            self._run0 = 0
            self._scan_start = f + 1
            return window

        self._partials = self._dedup(survivors + spawned)
        return None

    def _complete(
        self,
        k: int,
        start: int,
        trace: Tuple[int, ...],
        f: int,
        last: int,
        candidates: List[Tuple[int, Tuple[int, ...]]],
        spawned: List[_Partial],
    ) -> None:
        trace = trace + (f,)
        if k == last:
            candidates.append((start, trace))
        else:
            spawned.append(_Partial(k + 1, f, 0, start, trace))

    def _dedup(self, partials: List[_Partial]) -> List[_Partial]:
        """One partial per behaviorally-distinct key, best rank kept.

        The anchor only matters while the phase has a deadline; without
        one, partials differing only in anchor behave identically, so
        the lexicographically best (start, trace) dominates.
        """
        best: Dict[Tuple[int, int, Optional[int]], _Partial] = {}
        for st in partials:
            anchor_key = st.anchor if self.phases[st.k].deadline is not None else None
            key = (st.k, st.run, anchor_key)
            cur = best.get(key)
            if cur is None or st.rank() < cur.rank():
                best[key] = st
        return list(best.values())
