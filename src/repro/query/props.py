"""Frame-local propositions: the atoms of the scenario-query language.

A proposition asks one yes/no question about a single frame of one
stream — "is a car present?", "are there >= 3 detections in this
region?", "has some track persisted >= N frames?".  Propositions are
frozen, JSON-round-trippable dataclasses (``kind``-tagged for dispatch);
the temporal layer (:mod:`repro.query.spec`) combines them with
``eventually`` / ``always`` / ``then``.

Evaluation is strictly causal.  Track-aware propositions read a
:class:`TrackBook` — a per-stream running digest of everything the
tracker has emitted *so far* (observation counts, last known centers) —
so "persisted >= N frames" at frame ``t`` means "observed on >= N frames
with index <= t", never a lookahead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.detections import Detections


@dataclass(frozen=True)
class Region:
    """An axis-aligned region of the image, in pixels.

    Membership is by box *center* — robust to partial overlap and cheap
    to evaluate over a columnar box array.
    """

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if not (self.x0 < self.x1 and self.y0 < self.y1):
            raise ValueError(
                f"region must have x0 < x1 and y0 < y1, got "
                f"({self.x0}, {self.y0}, {self.x1}, {self.y1})"
            )

    def contains_centers(self, boxes: np.ndarray) -> np.ndarray:
        """Boolean mask: which boxes' centers fall inside the region."""
        boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
        cx = (boxes[:, 0] + boxes[:, 2]) / 2.0
        cy = (boxes[:, 1] + boxes[:, 3]) / 2.0
        return (cx >= self.x0) & (cx < self.x1) & (cy >= self.y0) & (cy < self.y1)

    def contains_point(self, x: float, y: float) -> bool:
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1

    def to_dict(self) -> Dict[str, Any]:
        return {"x0": self.x0, "y0": self.y0, "x1": self.x1, "y1": self.y1}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Region":
        return cls(
            x0=float(data["x0"]),
            y0=float(data["y0"]),
            x1=float(data["x1"]),
            y1=float(data["y1"]),
        )


class TrackBook:
    """Causal per-stream digest of the tracker's output so far.

    Fed one frame at a time (:meth:`step`), it maintains per-track
    observation counts and the previous/current box centers — exactly
    the state the track propositions need, nothing more.  The book never
    looks ahead: after ``step(frame_t)``, every field reflects frames
    ``<= t`` only.
    """

    def __init__(self) -> None:
        self.obs_count: Dict[int, int] = {}
        self.label: Dict[int, int] = {}
        self._center: Dict[int, Tuple[float, float]] = {}
        # Per-frame scratch, rewritten by each step():
        self.current_ids: List[int] = []
        self.prev_center: Dict[int, Optional[Tuple[float, float]]] = {}
        self.cur_center: Dict[int, Tuple[float, float]] = {}

    def step(self, detections: Detections, track_ids: np.ndarray) -> None:
        """Ingest one frame's tracked detections (ids -1 = untracked)."""
        self.current_ids = []
        self.prev_center = {}
        self.cur_center = {}
        ids = np.asarray(track_ids, dtype=np.int64).reshape(-1)
        boxes = detections.boxes
        labels = detections.labels
        for i in np.flatnonzero(ids >= 0):
            tid = int(ids[i])
            cx = float(boxes[i, 0] + boxes[i, 2]) / 2.0
            cy = float(boxes[i, 1] + boxes[i, 3]) / 2.0
            self.current_ids.append(tid)
            self.prev_center[tid] = self._center.get(tid)
            self.cur_center[tid] = (cx, cy)
            self._center[tid] = (cx, cy)
            self.obs_count[tid] = self.obs_count.get(tid, 0) + 1
            self.label[tid] = int(labels[i])


class FrameState:
    """Everything a proposition may read about the current frame."""

    __slots__ = ("detections", "track_ids", "book")

    def __init__(
        self,
        detections: Detections,
        track_ids: Optional[np.ndarray],
        book: TrackBook,
    ):
        self.detections = detections
        if track_ids is None:
            track_ids = np.full(len(detections), -1, dtype=np.int64)
        self.track_ids = np.asarray(track_ids, dtype=np.int64).reshape(-1)
        self.book = book


# --------------------------------------------------------------------- #
# Propositions
# --------------------------------------------------------------------- #

_PROP_KINDS: Dict[str, type] = {}


def _register(kind: str):
    def wrap(cls):
        cls.kind = kind
        _PROP_KINDS[kind] = cls
        return cls

    return wrap


class Prop:
    """Base class: one frame-local yes/no question."""

    kind = "?"

    def evaluate(self, state: FrameState) -> bool:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    def _base_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind}


def prop_from_dict(data: Dict[str, Any]) -> Prop:
    """Reconstruct any proposition from its ``kind``-tagged dict."""
    kind = data.get("kind")
    cls = _PROP_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown proposition kind {kind!r}; known: {sorted(_PROP_KINDS)}"
        )
    return cls.from_dict(data)


def _label_mask(detections: Detections, label: Optional[int]) -> np.ndarray:
    if label is None:
        return np.ones(len(detections), dtype=bool)
    return detections.labels == int(label)


@_register("class_present")
@dataclass(frozen=True)
class ClassPresent(Prop):
    """Some detection of ``label`` with score >= ``min_score`` exists."""

    label: int
    min_score: float = 0.0

    def evaluate(self, state: FrameState) -> bool:
        d = state.detections
        mask = (d.labels == int(self.label)) & (d.scores >= self.min_score)
        return bool(mask.any())

    def to_dict(self) -> Dict[str, Any]:
        return {**self._base_dict(), "label": self.label, "min_score": self.min_score}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassPresent":
        return cls(label=int(data["label"]), min_score=float(data.get("min_score", 0.0)))


@_register("count_at_least")
@dataclass(frozen=True)
class CountAtLeast(Prop):
    """At least ``k`` detections (optionally of one class) this frame."""

    k: int
    label: Optional[int] = None
    min_score: float = 0.0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")

    def evaluate(self, state: FrameState) -> bool:
        d = state.detections
        mask = _label_mask(d, self.label) & (d.scores >= self.min_score)
        return int(mask.sum()) >= self.k

    def to_dict(self) -> Dict[str, Any]:
        return {
            **self._base_dict(),
            "k": self.k,
            "label": self.label,
            "min_score": self.min_score,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CountAtLeast":
        label = data.get("label")
        return cls(
            k=int(data["k"]),
            label=None if label is None else int(label),
            min_score=float(data.get("min_score", 0.0)),
        )


@_register("box_in_region")
@dataclass(frozen=True)
class BoxInRegion(Prop):
    """Some detection's box center lies inside ``region``."""

    region: Region
    label: Optional[int] = None
    min_score: float = 0.0

    def evaluate(self, state: FrameState) -> bool:
        d = state.detections
        mask = _label_mask(d, self.label) & (d.scores >= self.min_score)
        if not mask.any():
            return False
        return bool(self.region.contains_centers(d.boxes[mask]).any())

    def to_dict(self) -> Dict[str, Any]:
        return {
            **self._base_dict(),
            "region": self.region.to_dict(),
            "label": self.label,
            "min_score": self.min_score,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BoxInRegion":
        label = data.get("label")
        return cls(
            region=Region.from_dict(data["region"]),
            label=None if label is None else int(label),
            min_score=float(data.get("min_score", 0.0)),
        )


@_register("track_persisted")
@dataclass(frozen=True)
class TrackPersisted(Prop):
    """Some track (optionally of one class) observed on >= N frames so far.

    Counts *observations* (frames on which the tracker claimed a
    detection for the track), including the current frame; the track
    itself must be present on the current frame.
    """

    min_frames: int
    label: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_frames < 1:
            raise ValueError(f"min_frames must be >= 1, got {self.min_frames}")

    def evaluate(self, state: FrameState) -> bool:
        book = state.book
        for tid in book.current_ids:
            if self.label is not None and book.label.get(tid) != int(self.label):
                continue
            if book.obs_count.get(tid, 0) >= self.min_frames:
                return True
        return False

    def to_dict(self) -> Dict[str, Any]:
        return {
            **self._base_dict(),
            "min_frames": self.min_frames,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrackPersisted":
        label = data.get("label")
        return cls(
            min_frames=int(data["min_frames"]),
            label=None if label is None else int(label),
        )


@_register("track_entered_region")
@dataclass(frozen=True)
class TrackEnteredRegion(Prop):
    """Some track crossed into ``region`` on this frame.

    True when a track observed this frame has a previously-recorded
    center *outside* the region and its current center *inside* — a
    track's first observation never fires.
    """

    region: Region
    label: Optional[int] = None

    def evaluate(self, state: FrameState) -> bool:
        return _crossing(state, self.region, self.label, entering=True)

    def to_dict(self) -> Dict[str, Any]:
        return {
            **self._base_dict(),
            "region": self.region.to_dict(),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrackEnteredRegion":
        label = data.get("label")
        return cls(
            region=Region.from_dict(data["region"]),
            label=None if label is None else int(label),
        )


@_register("track_left_region")
@dataclass(frozen=True)
class TrackLeftRegion(Prop):
    """Some track crossed out of ``region`` on this frame (see
    :class:`TrackEnteredRegion` for the crossing convention)."""

    region: Region
    label: Optional[int] = None

    def evaluate(self, state: FrameState) -> bool:
        return _crossing(state, self.region, self.label, entering=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            **self._base_dict(),
            "region": self.region.to_dict(),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrackLeftRegion":
        label = data.get("label")
        return cls(
            region=Region.from_dict(data["region"]),
            label=None if label is None else int(label),
        )


def _crossing(
    state: FrameState, region: Region, label: Optional[int], *, entering: bool
) -> bool:
    book = state.book
    for tid in book.current_ids:
        if label is not None and book.label.get(tid) != int(label):
            continue
        prev = book.prev_center.get(tid)
        if prev is None:
            continue
        was_in = region.contains_point(*prev)
        now_in = region.contains_point(*book.cur_center[tid])
        if entering and (not was_in) and now_in:
            return True
        if (not entering) and was_in and (not now_in):
            return True
    return False


# --------------------------------------------------------------------- #
# Boolean combinators (frame-local only)
# --------------------------------------------------------------------- #


@_register("not")
@dataclass(frozen=True)
class Not(Prop):
    """Frame-local negation of another proposition."""

    prop: Prop

    def __post_init__(self) -> None:
        if not isinstance(self.prop, Prop):
            raise TypeError(f"Not wraps a proposition, got {type(self.prop).__name__}")

    def evaluate(self, state: FrameState) -> bool:
        return not self.prop.evaluate(state)

    def to_dict(self) -> Dict[str, Any]:
        return {**self._base_dict(), "prop": self.prop.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Not":
        return cls(prop=prop_from_dict(data["prop"]))


@_register("all_of")
@dataclass(frozen=True)
class AllOf(Prop):
    """Frame-local conjunction: every sub-proposition holds."""

    props: Tuple[Prop, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "props", tuple(self.props))
        if not self.props:
            raise ValueError("AllOf needs at least one proposition")
        for p in self.props:
            if not isinstance(p, Prop):
                raise TypeError(f"AllOf members must be propositions, got {type(p).__name__}")

    def evaluate(self, state: FrameState) -> bool:
        return all(p.evaluate(state) for p in self.props)

    def to_dict(self) -> Dict[str, Any]:
        return {**self._base_dict(), "props": [p.to_dict() for p in self.props]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AllOf":
        return cls(props=tuple(prop_from_dict(p) for p in data["props"]))


@_register("any_of")
@dataclass(frozen=True)
class AnyOf(Prop):
    """Frame-local disjunction: some sub-proposition holds."""

    props: Tuple[Prop, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "props", tuple(self.props))
        if not self.props:
            raise ValueError("AnyOf needs at least one proposition")
        for p in self.props:
            if not isinstance(p, Prop):
                raise TypeError(f"AnyOf members must be propositions, got {type(p).__name__}")

    def evaluate(self, state: FrameState) -> bool:
        return any(p.evaluate(state) for p in self.props)

    def to_dict(self) -> Dict[str, Any]:
        return {**self._base_dict(), "props": [p.to_dict() for p in self.props]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AnyOf":
        return cls(props=tuple(prop_from_dict(p) for p in data["props"]))
