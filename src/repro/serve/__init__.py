"""Online serving: micro-batched multi-stream inference over one engine.

The offline layers replay registered datasets; this package serves them
as *traffic*.  A :class:`~repro.serve.server.DetectionServer` multiplexes
many concurrent camera streams through one shared engine, coalescing
their detector calls into cross-stream micro-batches
(:mod:`repro.serve.batcher`), accounting every frame's queue-wait /
compute / end-to-end latency against an SLO (:mod:`repro.serve.slo`),
and shedding load when the bounded admission queue overflows.  An
open-loop load generator (:mod:`repro.serve.loadgen`) drives it from
registered dataset sequences with Poisson, uniform or trace-replay
arrivals.

Time is a deterministic discrete-event simulation: service times come
from a :class:`~repro.serve.server.ServiceModel` — calibrated from a
:mod:`repro.cost` device profile (``ServeSpec(device="titanx")``) — fed
by *measured* detector invocations and the MAC accounting the pipeline
already produces, so identical specs yield identical reports — cacheable
by content fingerprint like every other result in this repo — while
per-frame detections stay byte-identical to the offline serial path.
Because simulated operating points are cached, policy search is cheap:
:func:`~repro.serve.tune.tune_policy` (CLI ``repro serve --tune``)
sweeps ``(max_batch_size, max_wait_ms)`` grids and picks the cheapest
policy meeting a p99 latency target.
"""

from repro.serve.batcher import MicroBatcher, QueuedFrame
from repro.serve.loadgen import (
    LOAD_PATTERNS,
    FrameRequest,
    LoadSpec,
    generate_load,
    register_load_pattern,
)
from repro.serve.server import (
    DetectionServer,
    ServePolicy,
    ServeReport,
    ServeReportStore,
    ServiceModel,
)
from repro.serve.slo import LatencyStats, SLOAccount
from repro.serve.tune import PolicyCandidate, TuneResult, tune_policy

__all__ = [
    "DetectionServer",
    "FrameRequest",
    "LatencyStats",
    "LoadSpec",
    "LOAD_PATTERNS",
    "MicroBatcher",
    "PolicyCandidate",
    "QueuedFrame",
    "register_load_pattern",
    "ServePolicy",
    "ServeReport",
    "ServeReportStore",
    "ServiceModel",
    "SLOAccount",
    "TuneResult",
    "generate_load",
    "tune_policy",
]
