"""Micro-batching policy: coalesce frames across streams, bounded delay.

The classic serving dilemma: a bigger batch amortizes the accelerator's
fixed per-invocation cost over more frames (throughput), but the first
frame of a forming batch pays the wait for the last (latency).  The
:class:`MicroBatcher` resolves it with the standard two-knob policy —
flush when ``max_batch_size`` frames are ready **or** when the oldest
ready frame has waited ``max_wait`` seconds, whichever comes first.

Causality across a stream is preserved structurally: only the
*head-of-line* frame of each stream is ever batchable (frame ``t+1``
needs the tracker feedback of frame ``t``), so a batch holds at most one
frame per stream and two frames of one stream can never ride together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.serve.loadgen import FrameRequest


@dataclass
class QueuedFrame:
    """One admitted frame waiting for dispatch."""

    request: FrameRequest
    enqueued: float  # admission time on the server clock


class MicroBatcher:
    """Size-or-deadline batch formation over the admission queue.

    Parameters
    ----------
    max_batch_size:
        Flush as soon as this many streams have a ready frame.
    max_wait:
        Seconds the oldest ready frame may wait for co-riders before the
        batch is flushed regardless of size.  ``0`` disables coalescing
        delay entirely (every idle moment flushes whatever is ready).
    """

    def __init__(self, max_batch_size: int = 8, max_wait: float = 0.025):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self.max_batch_size = int(max_batch_size)
        self.max_wait = float(max_wait)

    def ready(self, queue: List[QueuedFrame]) -> List[QueuedFrame]:
        """The batchable frontier: each stream's head-of-line frame.

        Queue order (FIFO by admission) is preserved, so ``ready[0]`` is
        always the oldest batchable frame.
        """
        seen: Set[str] = set()
        heads: List[QueuedFrame] = []
        for item in queue:
            if item.request.stream in seen:
                continue
            seen.add(item.request.stream)
            heads.append(item)
        return heads

    def decide(
        self,
        now: float,
        ready: List[QueuedFrame],
        *,
        more_arrivals: bool,
    ) -> Tuple[Optional[List[QueuedFrame]], Optional[float]]:
        """Flush now, or wake later?

        Returns ``(batch, None)`` when a batch should dispatch at ``now``
        (the oldest ``max_batch_size`` ready frames), or ``(None, wake)``
        when it pays to keep coalescing until time ``wake`` (the oldest
        frame's deadline) or the next arrival, whichever is earlier —
        the caller owns the arrival clock, so it takes the ``min``.
        With no future arrivals there is nothing to wait for and any
        non-empty frontier flushes immediately.
        """
        if not ready:
            return None, None
        deadline = ready[0].enqueued + self.max_wait
        if (
            len(ready) >= self.max_batch_size
            or not more_arrivals
            or now >= deadline
        ):
            return ready[: self.max_batch_size], None
        return None, deadline
