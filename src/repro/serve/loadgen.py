"""Open-loop load generation: arrival schedules over dataset sequences.

An *open-loop* generator emits frames on its own clock regardless of how
the server keeps up — the regime under which queueing delay, batching and
shedding actually matter (a closed loop would politely wait and hide all
three).  Arrival patterns are registered by name (the same plugin idiom
as system kinds and dataset families), so scenarios can add their own::

    from repro.serve import register_load_pattern

    @register_load_pattern("bursty")
    def _bursty(spec, stream_index, sequence, rng):
        ...  # -> arrival time in seconds for each served frame

Determinism: every stream derives its own RNG child from
``(seed, pattern, stream index)``, so schedules are reproducible and
adding a stream never perturbs the others' arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.api.registry import Registry
from repro.datasets.types import Dataset, Sequence
from repro.utils.rng import RngFactory

#: Arrival-pattern name → generator
#: ``(spec, stream_index, sequence, rng) -> array of arrival seconds``
#: (one entry per served frame, non-decreasing).
LOAD_PATTERNS = Registry("load pattern")


def register_load_pattern(name: str, *, override: bool = False):
    """Decorator registering an arrival-pattern generator under ``name``."""

    def _decorate(fn):
        LOAD_PATTERNS.register(name, fn, override=override)
        return fn

    return _decorate


@dataclass(frozen=True)
class LoadSpec:
    """One open-loop load: how many streams, arriving how, for how long.

    Parameters
    ----------
    pattern:
        A registered arrival pattern (built-ins: ``"poisson"``,
        ``"uniform"``, ``"replay"``).
    num_streams:
        Concurrent camera streams; stream ``i`` replays dataset sequence
        ``i mod len(dataset)`` (so more streams than sequences is fine).
    rate_hz:
        Per-stream frame arrival rate (ignored by ``"replay"``, which
        uses each sequence's native fps).
    rates:
        Optional per-stream rate overrides for *heterogeneous* offered
        load: stream ``i`` arrives at ``rates[i % len(rates)]`` frames/s
        instead of the uniform ``rate_hz``.  A busy intersection camera
        and a quiet parking-lot one are different streams — skewed rates
        are what gives fleet routing something to balance.  Determinism
        is untouched: each stream keeps its own RNG child keyed by
        ``(seed, pattern, stream index)``, so changing one stream's rate
        never perturbs another's arrivals.
    frames_per_stream:
        Frames each stream offers (capped by its sequence length;
        ``None`` = the whole sequence).
    seed:
        Root seed for stochastic patterns.
    """

    pattern: str = "poisson"
    num_streams: int = 4
    rate_hz: float = 15.0
    frames_per_stream: Optional[int] = 60
    seed: int = 0
    rates: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not self.pattern or not isinstance(self.pattern, str):
            raise ValueError(f"pattern must be a non-empty string, got {self.pattern!r}")
        if self.num_streams < 1:
            raise ValueError(f"num_streams must be >= 1, got {self.num_streams}")
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be positive, got {self.rate_hz}")
        if self.frames_per_stream is not None and self.frames_per_stream < 1:
            raise ValueError(
                f"frames_per_stream must be >= 1, got {self.frames_per_stream}"
            )
        if self.rates is not None:
            rates = tuple(float(r) for r in self.rates)
            if not rates:
                raise ValueError("rates must be non-empty when given (or None)")
            if any(r <= 0 for r in rates):
                raise ValueError(f"per-stream rates must be positive, got {rates}")
            object.__setattr__(self, "rates", rates)

    def stream_rate(self, stream_index: int) -> float:
        """Stream ``stream_index``'s arrival rate in frames/s."""
        if self.rates is None:
            return self.rate_hz
        return self.rates[stream_index % len(self.rates)]

    def stream_frames(self, sequence: Sequence) -> int:
        """How many frames one stream over ``sequence`` offers."""
        if self.frames_per_stream is None:
            return sequence.num_frames
        return min(self.frames_per_stream, sequence.num_frames)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "pattern": self.pattern,
            "num_streams": self.num_streams,
            "rate_hz": self.rate_hz,
            "frames_per_stream": self.frames_per_stream,
            "seed": self.seed,
        }
        # Key omitted when unset so pre-existing spec fingerprints (and
        # their cached reports) stay valid.
        if self.rates is not None:
            out["rates"] = list(self.rates)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LoadSpec":
        from repro.api.spec import _known_fields

        return cls(**_known_fields(cls, data))


@dataclass(frozen=True)
class FrameRequest:
    """One frame of one stream arriving at the server."""

    stream: str
    sequence: Sequence
    frame: int
    arrival: float  # seconds on the load generator's clock


def generate_load(spec: LoadSpec, dataset: Dataset) -> List[FrameRequest]:
    """The arrival schedule ``spec`` describes over ``dataset``.

    Returns requests sorted by ``(arrival, stream index, frame)`` —
    within each stream, frames arrive in causal order by construction
    (arrival times are non-decreasing cumulative sums).
    """
    if not dataset.sequences:
        raise ValueError("the dataset has no sequences to serve")
    pattern = LOAD_PATTERNS.get(spec.pattern)
    factory = RngFactory(spec.seed)
    requests: List[tuple] = []
    for i in range(spec.num_streams):
        sequence = dataset.sequences[i % len(dataset.sequences)]
        frames = spec.stream_frames(sequence)
        rng = factory.child("loadgen", spec.pattern, i)
        arrivals = np.asarray(pattern(spec, i, sequence, rng), dtype=np.float64)
        if arrivals.shape[0] < frames:
            raise ValueError(
                f"pattern {spec.pattern!r} produced {arrivals.shape[0]} arrivals "
                f"for stream {i}, need {frames}"
            )
        stream_id = f"s{i}:{sequence.name}"
        for frame in range(frames):
            requests.append((float(arrivals[frame]), i, frame, stream_id, sequence))
    requests.sort(key=lambda r: (r[0], r[1], r[2]))
    return [
        FrameRequest(stream=stream_id, sequence=sequence, frame=frame, arrival=arrival)
        for arrival, _i, frame, stream_id, sequence in requests
    ]


def schedule_to_dicts(requests: List[FrameRequest]) -> List[Dict[str, Any]]:
    """JSON-safe view of a schedule (sequence by name, no ground truth)."""
    return [
        {
            "stream": r.stream,
            "sequence": r.sequence.name,
            "frame": r.frame,
            "arrival": r.arrival,
        }
        for r in requests
    ]


# --------------------------------------------------------------------- #
# Built-in arrival patterns
# --------------------------------------------------------------------- #


@register_load_pattern("poisson")
def _poisson(spec: LoadSpec, stream_index: int, sequence: Sequence, rng) -> np.ndarray:
    """Memoryless arrivals at the stream's rate (exponential inter-arrivals)."""
    frames = spec.stream_frames(sequence)
    return np.cumsum(rng.exponential(1.0 / spec.stream_rate(stream_index), size=frames))


@register_load_pattern("uniform")
def _uniform(spec: LoadSpec, stream_index: int, sequence: Sequence, rng) -> np.ndarray:
    """Metronome arrivals: exactly the stream's rate in frames per second."""
    frames = spec.stream_frames(sequence)
    return (np.arange(frames, dtype=np.float64) + 1.0) / spec.stream_rate(stream_index)


@register_load_pattern("replay")
def _replay(spec: LoadSpec, stream_index: int, sequence: Sequence, rng) -> np.ndarray:
    """Trace replay: frames at the sequence's native capture timestamps."""
    frames = spec.stream_frames(sequence)
    fps = float(sequence.fps) if sequence.fps else spec.stream_rate(stream_index)
    return np.arange(frames, dtype=np.float64) / fps


#: Two-state MMPP shape: the burst state arrives ``BURSTY_FACTOR`` times
#: faster than the calm state; dwell times are exponential with these
#: means.  Rates are scaled so the *long-run* mean equals ``rate_hz``.
BURSTY_FACTOR = 4.0
BURSTY_CALM_DWELL_S = 4.0
BURSTY_BURST_DWELL_S = 1.0

#: Diurnal shape: one sinusoidal "day" per minute of simulated time (long
#: enough to see both phases inside a short serve run), swinging the
#: instantaneous rate by ±80 % around ``rate_hz``.
DIURNAL_PERIOD_S = 60.0
DIURNAL_AMPLITUDE = 0.8


@register_load_pattern("bursty")
def _bursty(spec: LoadSpec, stream_index: int, sequence: Sequence, rng) -> np.ndarray:
    """Two-state Markov-modulated Poisson process (bursty traffic).

    The stream alternates between a calm and a burst state (exponential
    dwell times); within each state arrivals are Poisson at that state's
    rate.  Camera fleets behave like this — rush hour and quiet night
    are different regimes, not one homogeneous rate — and it is the
    classic stress test for admission control: the long-run offered rate
    equals ``rate_hz``, but bursts transiently exceed it by
    ``BURSTY_FACTOR`` and fill queues that a Poisson load of the same
    mean never would.
    """
    frames = spec.stream_frames(sequence)
    # Stationary occupancy is proportional to dwell time; solve the calm
    # rate so the stationary mean is exactly the stream's rate.
    p_calm = BURSTY_CALM_DWELL_S / (BURSTY_CALM_DWELL_S + BURSTY_BURST_DWELL_S)
    calm_rate = spec.stream_rate(stream_index) / (
        p_calm + (1.0 - p_calm) * BURSTY_FACTOR
    )
    burst_rate = calm_rate * BURSTY_FACTOR
    arrivals = np.empty(frames, dtype=np.float64)
    t = 0.0
    in_burst = rng.random() < (1.0 - p_calm)  # start in the stationary mix
    state_end = t + rng.exponential(
        BURSTY_BURST_DWELL_S if in_burst else BURSTY_CALM_DWELL_S
    )
    emitted = 0
    while emitted < frames:
        gap = rng.exponential(1.0 / (burst_rate if in_burst else calm_rate))
        if t + gap >= state_end:
            # Jump to the state boundary and redraw — valid because the
            # exponential is memoryless.
            t = state_end
            in_burst = not in_burst
            state_end = t + rng.exponential(
                BURSTY_BURST_DWELL_S if in_burst else BURSTY_CALM_DWELL_S
            )
            continue
        t += gap
        arrivals[emitted] = t
        emitted += 1
    return arrivals


@register_load_pattern("diurnal")
def _diurnal(spec: LoadSpec, stream_index: int, sequence: Sequence, rng) -> np.ndarray:
    """Sinusoidal-rate Poisson arrivals (a compressed day/night cycle).

    A non-homogeneous Poisson process with instantaneous rate
    ``rate_hz * (1 + DIURNAL_AMPLITUDE * sin(2*pi*t / DIURNAL_PERIOD_S))``,
    generated by thinning against the peak rate.  Streams are phase-
    aligned (every camera sees the same day), so the fleet-wide load
    swings coherently — the autoscaling scenario ``repro serve --tune``
    provisions for.
    """
    frames = spec.stream_frames(sequence)
    base = spec.stream_rate(stream_index)
    peak = base * (1.0 + DIURNAL_AMPLITUDE)
    arrivals = np.empty(frames, dtype=np.float64)
    t = 0.0
    emitted = 0
    while emitted < frames:
        t += rng.exponential(1.0 / peak)
        rate = base * (
            1.0 + DIURNAL_AMPLITUDE * np.sin(2.0 * np.pi * t / DIURNAL_PERIOD_S)
        )
        if rng.random() * peak <= rate:
            arrivals[emitted] = t
            emitted += 1
    return arrivals
