"""Open-loop load generation: arrival schedules over dataset sequences.

An *open-loop* generator emits frames on its own clock regardless of how
the server keeps up — the regime under which queueing delay, batching and
shedding actually matter (a closed loop would politely wait and hide all
three).  Arrival patterns are registered by name (the same plugin idiom
as system kinds and dataset families), so scenarios can add their own::

    from repro.serve import register_load_pattern

    @register_load_pattern("bursty")
    def _bursty(spec, stream_index, sequence, rng):
        ...  # -> arrival time in seconds for each served frame

Determinism: every stream derives its own RNG child from
``(seed, pattern, stream index)``, so schedules are reproducible and
adding a stream never perturbs the others' arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.api.registry import Registry
from repro.datasets.types import Dataset, Sequence
from repro.utils.rng import RngFactory

#: Arrival-pattern name → generator
#: ``(spec, stream_index, sequence, rng) -> array of arrival seconds``
#: (one entry per served frame, non-decreasing).
LOAD_PATTERNS = Registry("load pattern")


def register_load_pattern(name: str, *, override: bool = False):
    """Decorator registering an arrival-pattern generator under ``name``."""

    def _decorate(fn):
        LOAD_PATTERNS.register(name, fn, override=override)
        return fn

    return _decorate


@dataclass(frozen=True)
class LoadSpec:
    """One open-loop load: how many streams, arriving how, for how long.

    Parameters
    ----------
    pattern:
        A registered arrival pattern (built-ins: ``"poisson"``,
        ``"uniform"``, ``"replay"``).
    num_streams:
        Concurrent camera streams; stream ``i`` replays dataset sequence
        ``i mod len(dataset)`` (so more streams than sequences is fine).
    rate_hz:
        Per-stream frame arrival rate (ignored by ``"replay"``, which
        uses each sequence's native fps).
    frames_per_stream:
        Frames each stream offers (capped by its sequence length;
        ``None`` = the whole sequence).
    seed:
        Root seed for stochastic patterns.
    """

    pattern: str = "poisson"
    num_streams: int = 4
    rate_hz: float = 15.0
    frames_per_stream: Optional[int] = 60
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.pattern or not isinstance(self.pattern, str):
            raise ValueError(f"pattern must be a non-empty string, got {self.pattern!r}")
        if self.num_streams < 1:
            raise ValueError(f"num_streams must be >= 1, got {self.num_streams}")
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be positive, got {self.rate_hz}")
        if self.frames_per_stream is not None and self.frames_per_stream < 1:
            raise ValueError(
                f"frames_per_stream must be >= 1, got {self.frames_per_stream}"
            )

    def stream_frames(self, sequence: Sequence) -> int:
        """How many frames one stream over ``sequence`` offers."""
        if self.frames_per_stream is None:
            return sequence.num_frames
        return min(self.frames_per_stream, sequence.num_frames)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pattern": self.pattern,
            "num_streams": self.num_streams,
            "rate_hz": self.rate_hz,
            "frames_per_stream": self.frames_per_stream,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LoadSpec":
        from repro.api.spec import _known_fields

        return cls(**_known_fields(cls, data))


@dataclass(frozen=True)
class FrameRequest:
    """One frame of one stream arriving at the server."""

    stream: str
    sequence: Sequence
    frame: int
    arrival: float  # seconds on the load generator's clock


def generate_load(spec: LoadSpec, dataset: Dataset) -> List[FrameRequest]:
    """The arrival schedule ``spec`` describes over ``dataset``.

    Returns requests sorted by ``(arrival, stream index, frame)`` —
    within each stream, frames arrive in causal order by construction
    (arrival times are non-decreasing cumulative sums).
    """
    if not dataset.sequences:
        raise ValueError("the dataset has no sequences to serve")
    pattern = LOAD_PATTERNS.get(spec.pattern)
    factory = RngFactory(spec.seed)
    requests: List[tuple] = []
    for i in range(spec.num_streams):
        sequence = dataset.sequences[i % len(dataset.sequences)]
        frames = spec.stream_frames(sequence)
        rng = factory.child("loadgen", spec.pattern, i)
        arrivals = np.asarray(pattern(spec, i, sequence, rng), dtype=np.float64)
        if arrivals.shape[0] < frames:
            raise ValueError(
                f"pattern {spec.pattern!r} produced {arrivals.shape[0]} arrivals "
                f"for stream {i}, need {frames}"
            )
        stream_id = f"s{i}:{sequence.name}"
        for frame in range(frames):
            requests.append((float(arrivals[frame]), i, frame, stream_id, sequence))
    requests.sort(key=lambda r: (r[0], r[1], r[2]))
    return [
        FrameRequest(stream=stream_id, sequence=sequence, frame=frame, arrival=arrival)
        for arrival, _i, frame, stream_id, sequence in requests
    ]


def schedule_to_dicts(requests: List[FrameRequest]) -> List[Dict[str, Any]]:
    """JSON-safe view of a schedule (sequence by name, no ground truth)."""
    return [
        {
            "stream": r.stream,
            "sequence": r.sequence.name,
            "frame": r.frame,
            "arrival": r.arrival,
        }
        for r in requests
    ]


# --------------------------------------------------------------------- #
# Built-in arrival patterns
# --------------------------------------------------------------------- #


@register_load_pattern("poisson")
def _poisson(spec: LoadSpec, stream_index: int, sequence: Sequence, rng) -> np.ndarray:
    """Memoryless arrivals at ``rate_hz`` (exponential inter-arrivals)."""
    frames = spec.stream_frames(sequence)
    return np.cumsum(rng.exponential(1.0 / spec.rate_hz, size=frames))


@register_load_pattern("uniform")
def _uniform(spec: LoadSpec, stream_index: int, sequence: Sequence, rng) -> np.ndarray:
    """Metronome arrivals: exactly ``rate_hz`` frames per second."""
    frames = spec.stream_frames(sequence)
    return (np.arange(frames, dtype=np.float64) + 1.0) / spec.rate_hz


@register_load_pattern("replay")
def _replay(spec: LoadSpec, stream_index: int, sequence: Sequence, rng) -> np.ndarray:
    """Trace replay: frames at the sequence's native capture timestamps."""
    frames = spec.stream_frames(sequence)
    fps = float(sequence.fps) if sequence.fps else spec.rate_hz
    return np.arange(frames, dtype=np.float64) / fps
