"""Closed-loop policy tuning: sweep batching knobs, pick the SLO-optimal one.

The serving simulator is deterministic and content-addressed, which makes
policy search nearly free: every ``(max_batch_size, max_wait_ms)`` grid
point is one :class:`~repro.api.spec.ServeSpec` with its own fingerprint,
so :meth:`repro.api.session.Session.serve` computes each operating point
once and serves every revisit — including a whole re-tune — from the
cache.  :func:`tune_policy` sweeps the grid and reports the *cheapest*
feasible policy:

* **feasible** — the fleet p99 end-to-end latency meets the target *and*
  nothing was shed (shed frames have no latency; dropping load to pass an
  SLO is not a win);
* **cheapest** — least modeled engine-busy time (``compute_seconds``),
  i.e. most headroom on the same device; ties break toward lower p99,
  then smaller batches and shorter waits.

Surfaced on the CLI as ``repro serve --tune --slo-p99-ms <target>``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence as Seq

from repro.api.spec import ServeSpec
from repro.serve.server import ServeReport

#: Default sweep grids: batch depths in powers of two, coalescing windows
#: from "dispatch immediately" to a generous 50 ms.
DEFAULT_BATCH_SIZES = (1, 2, 4, 8)
DEFAULT_MAX_WAITS_MS = (0.0, 10.0, 25.0, 50.0)


@dataclass(frozen=True)
class PolicyCandidate:
    """One evaluated grid point of a tuning sweep.

    ``alias_of`` names the canonical grid point this one collapsed into
    when their policy-bearing fingerprints were equal (at
    ``max_batch_size=1`` the coalescing window is inert, so every
    ``max_wait_ms`` value is the same effective policy).  An alias was
    never simulated — it shares the canonical point's report.
    """

    spec: ServeSpec
    report: ServeReport
    feasible: bool
    alias_of: Optional[str] = None

    @property
    def p99_ms(self) -> float:
        return float(self.report.slo["fleet"]["p99_ms"])

    @property
    def wait_p95_ms(self) -> float:
        """Fleet p95 queue wait (0.0 for pre-observability cached reports)."""
        return float(self.report.slo["fleet"].get("wait_p95_ms", 0.0))

    @property
    def cost_seconds(self) -> float:
        """Modeled engine-busy seconds — the "price" of this policy."""
        return self.report.compute_seconds

    @property
    def cost_per_frame(self) -> float:
        """Engine-busy time priced at the device's hourly rate, per frame.

        The explicit $-proxy readback of what feasibility's min-busy
        pick optimizes: ``compute_seconds`` converted to money through
        the :class:`~repro.cost.DeviceProfile`'s ``cost_per_hour`` and
        amortized over served frames.  ``inf`` when nothing was served
        (an all-shed policy has no meaningful unit cost).  The fleet
        tuner prices *allocated* replica-time instead of busy-time —
        see :mod:`repro.fleet.tune`.
        """
        served = self.report.frames_served
        if not served:
            return float("inf")
        rate = self.spec.service.cost_model().profile.cost_per_second
        return self.report.compute_seconds * rate / served

    def sort_key(self):
        policy = self.spec.policy
        return (
            self.cost_seconds,
            self.p99_ms,
            policy.max_batch_size,
            policy.max_wait_ms,
        )


@dataclass
class TuneResult:
    """Outcome of one tuning sweep.

    ``best`` is ``None`` when no grid point met the target — the load is
    infeasible on this device at any swept policy (shed load, saturated
    engine), which is itself the tuner's most valuable answer.
    """

    slo_p99_ms: float
    candidates: List[PolicyCandidate]
    best: Optional[PolicyCandidate]
    slo_wait_p95_ms: Optional[float] = None

    def format(self) -> str:
        """Human-readable sweep table plus the verdict."""
        from repro.harness.tables import format_table

        rows = []
        for cand in self.candidates:
            policy = cand.spec.policy
            marker = ""
            if cand is self.best:
                marker = "<= best"
            elif cand.alias_of is not None:
                marker = f"= {cand.alias_of}"
            elif cand.feasible:
                marker = "ok"
            cpf = cand.cost_per_frame
            rows.append(
                [
                    policy.max_batch_size,
                    policy.max_wait_ms,
                    cand.p99_ms,
                    cand.wait_p95_ms,
                    cand.report.frames_shed,
                    cand.cost_seconds,
                    # Cost per *kiloframe*: per-frame values are dust
                    # (milliseconds of device-time at dollars-per-hour).
                    None if not math.isfinite(cpf) else cpf * 1e3,
                    cand.report.throughput_fps,
                    marker,
                ]
            )
        title = f"Policy sweep — SLO p99 <= {self.slo_p99_ms:.0f} ms"
        if self.slo_wait_p95_ms is not None:
            title += f", queue-wait p95 <= {self.slo_wait_p95_ms:.0f} ms"
        table = format_table(
            ["batch", "wait(ms)", "p99(ms)", "qwait p95", "shed", "busy(s)",
             "cost/kf", "fps", ""],
            rows,
            precision=3,
            title=title,
        )
        if self.best is None:
            bounds = f"p99 <= {self.slo_p99_ms:.0f} ms"
            if self.slo_wait_p95_ms is not None:
                bounds += f" with queue-wait p95 <= {self.slo_wait_p95_ms:.0f} ms"
            verdict = (
                f"no swept policy meets {bounds} — "
                "the offered load is infeasible on this device"
            )
        else:
            policy = self.best.spec.policy
            verdict = (
                f"best policy: max_batch_size={policy.max_batch_size}, "
                f"max_wait_ms={policy.max_wait_ms:g} "
                f"(p99 {self.best.p99_ms:.1f} ms, "
                f"engine busy {self.best.cost_seconds:.3f}s)"
            )
        return f"{table}\n{verdict}"


def _evaluate_point(item):
    """Worker-process entry: evaluate one sweep point end to end.

    Builds its own :class:`~repro.api.session.Session` over the shared
    cache directory (content-addressed atomic writes make concurrent
    workers safe) and returns the report as a plain dict — the parent
    reconstructs it exactly like a cache hit, statistics only.
    """
    kind, cache_dir, spec_dict, use_cache = item
    from repro.api.session import Session

    session = Session(cache_dir=cache_dir)
    if kind == "serve":
        from repro.api.spec import ServeSpec as _Spec

        report = session.serve(_Spec.from_dict(spec_dict), use_cache=use_cache)
    elif kind == "fleet":
        from repro.fleet.spec import FleetSpec as _Spec

        report = session.serve_fleet(_Spec.from_dict(spec_dict), use_cache=use_cache)
    else:
        raise ValueError(f"unknown sweep kind: {kind!r}")
    return report.to_dict()


def sweep_reports(
    session,
    kind: str,
    specs: Seq,
    labels: Seq[str],
    *,
    use_cache: bool = True,
    workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
):
    """Evaluate independent sweep specs, optionally across processes.

    The engine of both tuners.  Serial (``workers`` in ``{None, 1}``)
    evaluates in order through ``session``; parallel fans cold points
    out over :func:`repro.utils.parmap.parallel_map` after (a) resolving
    already-cached fingerprints in-process — a re-tune never spawns a
    pool — and (b) evaluating the *first* cold point in-process to
    record the shared compute trace, so every worker replays it instead
    of re-running the engine.  Results come back in spec order;
    ``progress(label)`` fires per finished point, in completion order
    when parallel.
    """
    from repro.utils.parmap import parallel_map, resolve_workers

    total = len(specs)
    notify = progress if progress is not None else (lambda label: None)
    run = session.serve if kind == "serve" else session.serve_fleet
    if resolve_workers(workers, total) <= 1:
        reports = []
        for point, label in zip(specs, labels):
            reports.append(run(point, use_cache=use_cache))
            notify(label)
        return reports

    if kind == "serve":
        from repro.serve.server import ServeReport as _Report
        from repro.serve.server import ServeReportStore as _Store
    else:
        from repro.fleet.server import FleetReport as _Report
        from repro.fleet.server import FleetReportStore as _Store

    cache_dir = str(session.cache.root) if session.cache is not None else None
    store = (
        _Store(session.cache.root)
        if session.cache is not None and use_cache
        else None
    )
    reports = [None] * total
    pending: List[int] = []
    for i, point in enumerate(specs):
        if store is not None and point.fingerprint in store:
            reports[i] = run(point, use_cache=use_cache)
            notify(labels[i])
        else:
            pending.append(i)
    if pending and cache_dir is not None and use_cache:
        # Warm the shared compute trace before fanning out.
        first = pending.pop(0)
        reports[first] = run(specs[first], use_cache=use_cache)
        notify(labels[first])
    if pending:
        items = [
            (kind, cache_dir, specs[i].to_dict(), use_cache) for i in pending
        ]
        results = parallel_map(
            _evaluate_point,
            items,
            workers=workers,
            on_progress=lambda done, n, label: notify(label),
            labels=[labels[i] for i in pending],
        )
        for i, payload in zip(pending, results):
            reports[i] = _Report.from_dict(payload)
    return reports


def _effective_fingerprint(point: ServeSpec) -> str:
    """Fingerprint of ``point``'s *effective* policy.

    At ``max_batch_size=1`` the micro-batcher dispatches any non-empty
    frontier immediately, so ``max_wait_ms`` cannot influence the run;
    canonicalizing it to ``0.0`` before fingerprinting makes all such
    grid points collapse into one simulation.
    """
    policy = point.policy
    if policy.max_batch_size == 1 and policy.max_wait_ms != 0.0:
        point = replace(point, policy=replace(policy, max_wait_ms=0.0))
    return point.fingerprint


def tune_policy(
    session,
    spec: ServeSpec,
    *,
    slo_p99_ms: float,
    slo_wait_p95_ms: Optional[float] = None,
    batch_sizes: Seq[int] = DEFAULT_BATCH_SIZES,
    max_waits_ms: Seq[float] = DEFAULT_MAX_WAITS_MS,
    use_cache: bool = True,
    on_progress: Optional[Callable[[int, int, str], None]] = None,
    workers: Optional[int] = None,
) -> TuneResult:
    """Sweep ``(max_batch_size, max_wait_ms)`` and pick the SLO-optimal policy.

    Every grid point is ``spec`` with only its batching knobs replaced;
    all other sections (system, dataset, load, device/service, admission
    and shedding) are held fixed, and each point routes through
    ``session.serve`` — so revisited points, including a full re-tune,
    are pure cache hits.

    Parameters
    ----------
    session:
        A :class:`repro.api.session.Session` (supplies the report cache).
    spec:
        The base deployment to tune.
    slo_p99_ms:
        Feasibility target for the fleet p99 end-to-end latency.
    slo_wait_p95_ms:
        Optional additional bound on the fleet p95 *queue wait*.  End-to-end
        p99 can hide a policy that meets the deadline only by batching
        aggressively and parking frames in the queue; bounding queue wait
        keeps the admission-to-dispatch delay itself under control.
    batch_sizes / max_waits_ms:
        The grid axes.
    on_progress:
        Optional ``callback(done, total, label)`` per resolved grid
        point (aliases resolve the moment their canonical point does).
        Serial sweeps fire in grid order; parallel sweeps fire in
        completion order — the returned candidate list is in grid order
        either way.
    workers:
        Evaluate cold grid points in ``workers`` processes sharing the
        session's cache (``0`` = one per core, ``None``/``1`` = serial).
        The first cold point runs in-process to record the shared
        compute trace; results are identical at any worker count.
    """
    if slo_p99_ms <= 0:
        raise ValueError(f"slo_p99_ms must be positive, got {slo_p99_ms}")
    if slo_wait_p95_ms is not None and slo_wait_p95_ms <= 0:
        raise ValueError(
            f"slo_wait_p95_ms must be positive, got {slo_wait_p95_ms}"
        )
    if not batch_sizes or not max_waits_ms:
        raise ValueError("batch_sizes and max_waits_ms must be non-empty")
    grid = [
        (int(batch), float(wait)) for batch in batch_sizes for wait in max_waits_ms
    ]
    total = len(grid)

    # Collapse grid points with equal effective-policy fingerprints: the
    # first occurrence (in grid order) is canonical and gets simulated;
    # the rest become aliases sharing its report.
    points: List[ServeSpec] = []
    owner: List[int] = []  # grid index -> unique index
    alias_of: List[Optional[str]] = []
    unique_specs: List[ServeSpec] = []
    unique_labels: List[str] = []
    unique_aliases: List[List[int]] = []  # unique index -> alias grid indices
    unique_by_fp: dict = {}
    for gi, (batch, wait) in enumerate(grid):
        point = replace(
            spec,
            policy=replace(spec.policy, max_batch_size=batch, max_wait_ms=wait),
        )
        points.append(point)
        fp = _effective_fingerprint(point)
        ui = unique_by_fp.get(fp)
        if ui is None:
            ui = unique_by_fp[fp] = len(unique_specs)
            unique_specs.append(point)
            unique_labels.append(f"batch={batch} wait={wait:g}ms")
            unique_aliases.append([])
            alias_of.append(None)
        else:
            unique_aliases[ui].append(gi)
            alias_of.append(unique_labels[ui])
        owner.append(ui)

    done = 0

    def fire(label: str) -> None:
        nonlocal done
        done += 1
        if on_progress is not None:
            on_progress(done, total, label)

    ui_by_label = {label: ui for ui, label in enumerate(unique_labels)}

    def progress(label: str) -> None:
        ui = ui_by_label[label]
        fire(label)
        for gi in unique_aliases[ui]:
            batch, wait = grid[gi]
            fire(f"batch={batch} wait={wait:g}ms (= {label})")

    reports = sweep_reports(
        session,
        "serve",
        unique_specs,
        unique_labels,
        use_cache=use_cache,
        workers=workers,
        progress=progress,
    )

    candidates: List[PolicyCandidate] = []
    for gi, point in enumerate(points):
        report = reports[owner[gi]]
        feasible = (
            float(report.slo["fleet"]["p99_ms"]) <= slo_p99_ms
            and report.frames_shed == 0
            and (
                slo_wait_p95_ms is None
                or float(report.slo["fleet"].get("wait_p95_ms", 0.0))
                <= slo_wait_p95_ms
            )
        )
        candidates.append(
            PolicyCandidate(
                spec=point,
                report=report,
                feasible=feasible,
                alias_of=alias_of[gi],
            )
        )
    feasible = [c for c in candidates if c.feasible]
    best = min(feasible, key=PolicyCandidate.sort_key) if feasible else None
    return TuneResult(
        slo_p99_ms=slo_p99_ms,
        candidates=candidates,
        best=best,
        slo_wait_p95_ms=slo_wait_p95_ms,
    )
