"""Closed-loop policy tuning: sweep batching knobs, pick the SLO-optimal one.

The serving simulator is deterministic and content-addressed, which makes
policy search nearly free: every ``(max_batch_size, max_wait_ms)`` grid
point is one :class:`~repro.api.spec.ServeSpec` with its own fingerprint,
so :meth:`repro.api.session.Session.serve` computes each operating point
once and serves every revisit — including a whole re-tune — from the
cache.  :func:`tune_policy` sweeps the grid and reports the *cheapest*
feasible policy:

* **feasible** — the fleet p99 end-to-end latency meets the target *and*
  nothing was shed (shed frames have no latency; dropping load to pass an
  SLO is not a win);
* **cheapest** — least modeled engine-busy time (``compute_seconds``),
  i.e. most headroom on the same device; ties break toward lower p99,
  then smaller batches and shorter waits.

Surfaced on the CLI as ``repro serve --tune --slo-p99-ms <target>``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence as Seq

from repro.api.spec import ServeSpec
from repro.serve.server import ServeReport

#: Default sweep grids: batch depths in powers of two, coalescing windows
#: from "dispatch immediately" to a generous 50 ms.
DEFAULT_BATCH_SIZES = (1, 2, 4, 8)
DEFAULT_MAX_WAITS_MS = (0.0, 10.0, 25.0, 50.0)


@dataclass(frozen=True)
class PolicyCandidate:
    """One evaluated grid point of a tuning sweep."""

    spec: ServeSpec
    report: ServeReport
    feasible: bool

    @property
    def p99_ms(self) -> float:
        return float(self.report.slo["fleet"]["p99_ms"])

    @property
    def wait_p95_ms(self) -> float:
        """Fleet p95 queue wait (0.0 for pre-observability cached reports)."""
        return float(self.report.slo["fleet"].get("wait_p95_ms", 0.0))

    @property
    def cost_seconds(self) -> float:
        """Modeled engine-busy seconds — the "price" of this policy."""
        return self.report.compute_seconds

    @property
    def cost_per_frame(self) -> float:
        """Engine-busy time priced at the device's hourly rate, per frame.

        The explicit $-proxy readback of what feasibility's min-busy
        pick optimizes: ``compute_seconds`` converted to money through
        the :class:`~repro.cost.DeviceProfile`'s ``cost_per_hour`` and
        amortized over served frames.  ``inf`` when nothing was served
        (an all-shed policy has no meaningful unit cost).  The fleet
        tuner prices *allocated* replica-time instead of busy-time —
        see :mod:`repro.fleet.tune`.
        """
        served = self.report.frames_served
        if not served:
            return float("inf")
        rate = self.spec.service.cost_model().profile.cost_per_second
        return self.report.compute_seconds * rate / served

    def sort_key(self):
        policy = self.spec.policy
        return (
            self.cost_seconds,
            self.p99_ms,
            policy.max_batch_size,
            policy.max_wait_ms,
        )


@dataclass
class TuneResult:
    """Outcome of one tuning sweep.

    ``best`` is ``None`` when no grid point met the target — the load is
    infeasible on this device at any swept policy (shed load, saturated
    engine), which is itself the tuner's most valuable answer.
    """

    slo_p99_ms: float
    candidates: List[PolicyCandidate]
    best: Optional[PolicyCandidate]
    slo_wait_p95_ms: Optional[float] = None

    def format(self) -> str:
        """Human-readable sweep table plus the verdict."""
        from repro.harness.tables import format_table

        rows = []
        for cand in self.candidates:
            policy = cand.spec.policy
            marker = ""
            if cand is self.best:
                marker = "<= best"
            elif cand.feasible:
                marker = "ok"
            cpf = cand.cost_per_frame
            rows.append(
                [
                    policy.max_batch_size,
                    policy.max_wait_ms,
                    cand.p99_ms,
                    cand.wait_p95_ms,
                    cand.report.frames_shed,
                    cand.cost_seconds,
                    # Cost per *kiloframe*: per-frame values are dust
                    # (milliseconds of device-time at dollars-per-hour).
                    None if not math.isfinite(cpf) else cpf * 1e3,
                    cand.report.throughput_fps,
                    marker,
                ]
            )
        title = f"Policy sweep — SLO p99 <= {self.slo_p99_ms:.0f} ms"
        if self.slo_wait_p95_ms is not None:
            title += f", queue-wait p95 <= {self.slo_wait_p95_ms:.0f} ms"
        table = format_table(
            ["batch", "wait(ms)", "p99(ms)", "qwait p95", "shed", "busy(s)",
             "cost/kf", "fps", ""],
            rows,
            precision=3,
            title=title,
        )
        if self.best is None:
            bounds = f"p99 <= {self.slo_p99_ms:.0f} ms"
            if self.slo_wait_p95_ms is not None:
                bounds += f" with queue-wait p95 <= {self.slo_wait_p95_ms:.0f} ms"
            verdict = (
                f"no swept policy meets {bounds} — "
                "the offered load is infeasible on this device"
            )
        else:
            policy = self.best.spec.policy
            verdict = (
                f"best policy: max_batch_size={policy.max_batch_size}, "
                f"max_wait_ms={policy.max_wait_ms:g} "
                f"(p99 {self.best.p99_ms:.1f} ms, "
                f"engine busy {self.best.cost_seconds:.3f}s)"
            )
        return f"{table}\n{verdict}"


def tune_policy(
    session,
    spec: ServeSpec,
    *,
    slo_p99_ms: float,
    slo_wait_p95_ms: Optional[float] = None,
    batch_sizes: Seq[int] = DEFAULT_BATCH_SIZES,
    max_waits_ms: Seq[float] = DEFAULT_MAX_WAITS_MS,
    use_cache: bool = True,
    on_progress: Optional[Callable[[int, int, str], None]] = None,
) -> TuneResult:
    """Sweep ``(max_batch_size, max_wait_ms)`` and pick the SLO-optimal policy.

    Every grid point is ``spec`` with only its batching knobs replaced;
    all other sections (system, dataset, load, device/service, admission
    and shedding) are held fixed, and each point routes through
    ``session.serve`` — so revisited points, including a full re-tune,
    are pure cache hits.

    Parameters
    ----------
    session:
        A :class:`repro.api.session.Session` (supplies the report cache).
    spec:
        The base deployment to tune.
    slo_p99_ms:
        Feasibility target for the fleet p99 end-to-end latency.
    slo_wait_p95_ms:
        Optional additional bound on the fleet p95 *queue wait*.  End-to-end
        p99 can hide a policy that meets the deadline only by batching
        aggressively and parking frames in the queue; bounding queue wait
        keeps the admission-to-dispatch delay itself under control.
    batch_sizes / max_waits_ms:
        The grid axes.
    on_progress:
        Optional ``callback(done, total, label)`` per evaluated point.
    """
    if slo_p99_ms <= 0:
        raise ValueError(f"slo_p99_ms must be positive, got {slo_p99_ms}")
    if slo_wait_p95_ms is not None and slo_wait_p95_ms <= 0:
        raise ValueError(
            f"slo_wait_p95_ms must be positive, got {slo_wait_p95_ms}"
        )
    if not batch_sizes or not max_waits_ms:
        raise ValueError("batch_sizes and max_waits_ms must be non-empty")
    grid = [
        (int(batch), float(wait)) for batch in batch_sizes for wait in max_waits_ms
    ]
    candidates: List[PolicyCandidate] = []
    for i, (batch, wait) in enumerate(grid):
        point = replace(
            spec,
            policy=replace(spec.policy, max_batch_size=batch, max_wait_ms=wait),
        )
        report = session.serve(point, use_cache=use_cache)
        feasible = (
            float(report.slo["fleet"]["p99_ms"]) <= slo_p99_ms
            and report.frames_shed == 0
            and (
                slo_wait_p95_ms is None
                or float(report.slo["fleet"].get("wait_p95_ms", 0.0))
                <= slo_wait_p95_ms
            )
        )
        candidates.append(
            PolicyCandidate(spec=point, report=report, feasible=feasible)
        )
        if on_progress is not None:
            on_progress(i + 1, len(grid), f"batch={batch} wait={wait:g}ms")
    feasible = [c for c in candidates if c.feasible]
    best = min(feasible, key=PolicyCandidate.sort_key) if feasible else None
    return TuneResult(
        slo_p99_ms=slo_p99_ms,
        candidates=candidates,
        best=best,
        slo_wait_p95_ms=slo_wait_p95_ms,
    )
