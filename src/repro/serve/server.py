"""The detection server: one shared engine, many concurrent streams.

:class:`DetectionServer` owns per-stream causal pipeline state (one
tracker per stream, detectors shared across all of them), a bounded
admission queue with a shedding policy, and a
:class:`~repro.serve.batcher.MicroBatcher` that coalesces the streams'
detector calls into cross-stream batched invocations.

Execution is a deterministic discrete-event simulation.  Wall time on
the host measures *this machine's Python*, not the modeled accelerator;
instead, every dispatched batch is charged a service time by the
:class:`ServiceModel` from two measured quantities — how many batched
detector invocations the batch actually made (the per-call fixed
overhead being amortized) and how many MACs its frames cost (the ops
accounting the pipeline already produces).  Queue waits, latencies and
SLO statistics all live on this simulated clock, so a served
configuration is a pure function of its spec: reports are reproducible,
cacheable, and safe to assert on in tests.

Per-frame detections are byte-identical to the offline serial path
whatever the batch composition — the determinism contract keys every
sample by ``(model, seed, sequence, frame)``, never by batch.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence as SequenceType, Union

from repro.api.spec import _known_fields
from repro.core.config import SystemConfig, build_system
from repro.core.results import FrameResult, FrameResultBuffer
from repro.core.systems import DetectionSystem
from repro.datasets.types import Sequence
from repro.engine.stages import StagePipeline, run_frame_batch
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    resolve_registry,
)
from repro.obs.sinks import Sink, as_sinks
from repro.serve.batcher import MicroBatcher, QueuedFrame
from repro.serve.loadgen import FrameRequest
from repro.serve.slo import DEFAULT_MAX_EXACT_SAMPLES, SLOAccount

# Format 2 added shed-reason splits, queue-wait/compute percentiles and
# fleet histograms to the SLO section; format 3 added the scenario-query
# section (`query_windows`).  Older cache entries fail `from_dict` and
# are therefore clean cache misses, never misreads.
REPORT_FORMAT = "repro-serve-report/3"

#: Shedding policies for a full admission queue.
SHED_OLDEST = "oldest"  #: drop the oldest queued frame, admit the new one
SHED_NEWEST = "newest"  #: reject the arriving frame, keep the queue
SHED_POLICIES = (SHED_OLDEST, SHED_NEWEST)


@dataclass(frozen=True)
class ServePolicy:
    """Admission + batching + SLO knobs of one server deployment.

    Parameters
    ----------
    max_batch_size / max_wait_ms:
        Micro-batching policy (see :class:`~repro.serve.batcher.MicroBatcher`).
    queue_capacity:
        Bound on queued (admitted, undispatched) frames; arrivals beyond
        it trigger the shedding policy.
    shed_policy:
        ``"oldest"`` sheds the longest-queued frame in favour of the
        arrival (fresh frames are worth more than stale ones on a live
        feed); ``"newest"`` rejects the arrival.
    slo_ms:
        End-to-end latency objective used for violation counting.
    """

    max_batch_size: int = 8
    max_wait_ms: float = 25.0
    queue_capacity: int = 64
    shed_policy: str = SHED_OLDEST
    slo_ms: float = 200.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, got {self.shed_policy!r}"
            )
        if self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {self.slo_ms}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_batch_size": self.max_batch_size,
            "max_wait_ms": self.max_wait_ms,
            "queue_capacity": self.queue_capacity,
            "shed_policy": self.shed_policy,
            "slo_ms": self.slo_ms,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServePolicy":
        return cls(**_known_fields(cls, data))


@dataclass(frozen=True)
class ServiceModel:
    """Accelerator timing model: fixed per-invocation cost + MAC rate.

    The paper's systems run DNNs on an accelerator whose every
    invocation pays a fixed overhead (kernel launch, host round-trip,
    weight residency) before the data-dependent compute.  Micro-batching
    exists because of that first term: a batch of N frames pays it once
    instead of N times.

    Since the unified cost layer (:mod:`repro.cost`) every service time
    is computed by a :class:`~repro.cost.CostModel`.  The preferred
    construction is :meth:`for_device` (or just ``ServiceModel()``,
    which calibrates from the ``"abstract"`` profile): the model then
    carries its device provenance, uses the *full* profile — including
    per-frame CPU overhead — and its displayed rates are derived, never
    invented.  Explicit ``invocation_overhead_ms`` / ``gops_per_second``
    values remain supported for ad-hoc what-if models, but such a model
    records ``device=None`` and cannot be combined with a device-naming
    spec (the spec layer rejects the pair as contradictory).

    Parameters
    ----------
    invocation_overhead_ms:
        Fixed cost charged per batched detector invocation (``None``
        derives it from the device profile).
    gops_per_second:
        Sustained accelerator throughput the MAC volume is costed at
        (``None`` derives it from the device profile).
    device:
        Registered :data:`repro.cost.DEVICE_PROFILES` name this model is
        calibrated from; ``None`` marks explicit uncalibrated rates.
    """

    invocation_overhead_ms: Optional[float] = None
    gops_per_second: Optional[float] = None
    device: Optional[str] = None

    def __post_init__(self) -> None:
        from repro.cost import get_device

        explicit = (
            self.invocation_overhead_ms is not None
            or self.gops_per_second is not None
        )
        if self.device is None and not explicit:
            object.__setattr__(self, "device", "abstract")
        if self.device is not None:
            profile = get_device(self.device)  # raises for unknown names
            for name, derived in (
                ("invocation_overhead_ms", profile.invocation_overhead_ms),
                ("gops_per_second", profile.gops_per_second),
            ):
                value = getattr(self, name)
                if value is None:
                    object.__setattr__(self, name, derived)
                elif value != derived:
                    raise ValueError(
                        f"{name}={value} contradicts device {self.device!r} "
                        f"(its calibrated value is {derived}); pass explicit "
                        f"rates or a device, not both"
                    )
        else:
            from repro.cost import ABSTRACT

            if self.invocation_overhead_ms is None:
                object.__setattr__(
                    self, "invocation_overhead_ms", ABSTRACT.invocation_overhead_ms
                )
            if self.gops_per_second is None:
                object.__setattr__(self, "gops_per_second", ABSTRACT.gops_per_second)
        if self.invocation_overhead_ms < 0:
            raise ValueError(
                f"invocation_overhead_ms must be >= 0, got {self.invocation_overhead_ms}"
            )
        if self.gops_per_second <= 0:
            raise ValueError(
                f"gops_per_second must be positive, got {self.gops_per_second}"
            )
        # batch_seconds sits in the simulator's per-batch hot loop: build
        # the cost model once, not per call.  Not a dataclass field, so
        # equality/repr/serialization are untouched.
        from repro.cost import CostModel, get_device, profile_from_service_rates

        if self.device is not None:
            cost = CostModel(get_device(self.device))
        else:
            cost = CostModel(
                profile_from_service_rates(
                    self.invocation_overhead_ms, self.gops_per_second
                )
            )
        object.__setattr__(self, "_cost_model", cost)

    @classmethod
    def for_device(cls, device: str) -> "ServiceModel":
        """A service model calibrated from a registered device profile."""
        from repro.cost import get_device

        return cls(device=get_device(device).name)

    def cost_model(self):
        """The :class:`~repro.cost.CostModel` service times come from."""
        return self._cost_model

    def batch_seconds(self, invocations: int, macs: float, frames: int = 0) -> float:
        """Service time of one batch from measured invocations + MACs.

        ``frames`` (the batch's frame count) charges the profile's
        per-frame CPU overhead; zero for uncalibrated explicit rates.
        """
        return self._cost_model.batch_seconds(invocations, macs, frames)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invocation_overhead_ms": self.invocation_overhead_ms,
            "gops_per_second": self.gops_per_second,
            "device": self.device,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServiceModel":
        return cls(**_known_fields(cls, data))


@dataclass
class ServeReport:
    """What one served load cost: throughput, latency, SLO accounting.

    ``frame_results`` (per-stream :class:`FrameResult` lists, dispatch
    order) is populated only by a live :meth:`DetectionServer.run` — it
    is the byte-identity evidence and is deliberately excluded from
    :meth:`to_dict`, so cached reports carry statistics only.
    ``wall_seconds`` measures this host's Python and is likewise
    excluded (it is not part of the deterministic result).

    ``query_windows`` is the serialized
    :class:`~repro.query.offline.QueryReport` of the deployment's
    scenario query (``None`` when the server ran without one).  Being a
    deterministic function of the spec it *is* cached.
    """

    policy: ServePolicy
    service: ServiceModel
    frames_offered: int
    frames_served: int
    frames_shed: int
    batches: int
    invocations: int
    makespan_seconds: float
    compute_seconds: float
    slo: Dict[str, Any]
    query_windows: Optional[Dict[str, Any]] = None
    frame_results: Optional[Dict[str, SequenceType[FrameResult]]] = None
    wall_seconds: float = 0.0

    def query_report(self):
        """The scenario-query :class:`~repro.query.offline.QueryReport`
        (``None`` when the deployment had no query)."""
        if self.query_windows is None:
            return None
        from repro.query.offline import QueryReport

        return QueryReport.from_dict(self.query_windows)

    @property
    def mean_batch_size(self) -> float:
        return self.frames_served / self.batches if self.batches else 0.0

    @property
    def throughput_fps(self) -> float:
        """Aggregate served frames per second of simulated time."""
        return (
            self.frames_served / self.makespan_seconds
            if self.makespan_seconds > 0
            else 0.0
        )

    @property
    def utilization(self) -> float:
        """Fraction of the makespan the modeled engine spent computing."""
        return (
            self.compute_seconds / self.makespan_seconds
            if self.makespan_seconds > 0
            else 0.0
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": REPORT_FORMAT,
            "policy": self.policy.to_dict(),
            "service": self.service.to_dict(),
            "frames_offered": self.frames_offered,
            "frames_served": self.frames_served,
            "frames_shed": self.frames_shed,
            "batches": self.batches,
            "invocations": self.invocations,
            "mean_batch_size": self.mean_batch_size,
            "makespan_seconds": self.makespan_seconds,
            "compute_seconds": self.compute_seconds,
            "throughput_fps": self.throughput_fps,
            "utilization": self.utilization,
            "slo": self.slo,
            "query_windows": self.query_windows,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServeReport":
        if data.get("format") != REPORT_FORMAT:
            raise ValueError(
                f"unsupported report format {data.get('format')!r}, "
                f"expected {REPORT_FORMAT!r}"
            )
        return cls(
            policy=ServePolicy.from_dict(data["policy"]),
            service=ServiceModel.from_dict(data["service"]),
            frames_offered=data["frames_offered"],
            frames_served=data["frames_served"],
            frames_shed=data["frames_shed"],
            batches=data["batches"],
            invocations=data["invocations"],
            makespan_seconds=data["makespan_seconds"],
            compute_seconds=data["compute_seconds"],
            slo=data["slo"],
            query_windows=data.get("query_windows"),
        )

    def format(self) -> str:
        """Human-readable throughput/latency report."""
        from repro.harness.tables import format_table

        rows = []
        slo_streams = self.slo.get("streams", {})
        for name, s in slo_streams.items():
            rows.append(
                [name, s["served"], s["shed"], s["violations"],
                 s["p50_ms"], s["p95_ms"], s["p99_ms"],
                 s["mean_wait_ms"], s["mean_compute_ms"]]
            )
        fleet = self.slo.get("fleet", {})
        if fleet:
            rows.append(
                ["(fleet)", fleet["served"], fleet["shed"], fleet["violations"],
                 fleet["p50_ms"], fleet["p95_ms"], fleet["p99_ms"],
                 fleet["mean_wait_ms"], fleet["mean_compute_ms"]]
            )
        table = format_table(
            ["stream", "served", "shed", "viol",
             "p50(ms)", "p95(ms)", "p99(ms)", "wait(ms)", "compute(ms)"],
            rows,
            precision=1,
            title="Serving report",
        )
        slo_ms = self.slo.get("slo_ms")
        shed_reasons = fleet.get("shed_reasons") or {}
        shed_detail = (
            " (" + ", ".join(f"{k}: {v}" for k, v in sorted(shed_reasons.items())) + ")"
            if shed_reasons
            else ""
        )
        summary = (
            f"offered {self.frames_offered} frames, served {self.frames_served}, "
            f"shed {self.frames_shed}{shed_detail}\n"
            f"batches: {self.batches} (mean size {self.mean_batch_size:.2f}), "
            f"detector invocations: {self.invocations}\n"
            f"throughput: {self.throughput_fps:.1f} frames/s over "
            f"{self.makespan_seconds:.3f}s simulated "
            f"(engine utilization {self.utilization:.0%})"
        )
        if slo_ms is not None:
            summary += f"\nSLO: {slo_ms:.0f} ms end-to-end"
        if "wait_p95_ms" in fleet:
            summary += (
                f"\nqueue wait p95: {fleet['wait_p95_ms']:.1f} ms, "
                f"compute p95: {fleet['compute_p95_ms']:.1f} ms"
            )
        query_report = self.query_report()
        if query_report is not None:
            summary += f"\n\n{query_report.format()}"
        return f"{table}\n{summary}"


class _StreamState:
    """One stream's causal serving state."""

    __slots__ = ("pipeline", "sequence", "results", "query")

    def __init__(self, pipeline: StagePipeline, query=None):
        self.pipeline = pipeline
        self.sequence: Optional[Sequence] = None
        self.results = FrameResultBuffer()
        # Per-stream scenario-query evaluator, cloned like the tracker.
        self.query = query


class DetectionServer:
    """Micro-batched multi-stream serving over one shared engine.

    Parameters
    ----------
    system:
        A :class:`~repro.core.config.SystemConfig` (built internally) or
        a live :class:`~repro.core.systems.DetectionSystem`.  All streams
        share its detectors (and their deterministic caches); each stream
        gets its own tracker state.
    policy / service:
        Admission/batching knobs and the accelerator timing model.
    device:
        Shorthand for ``service=ServiceModel.for_device(device)``; passing
        both an explicit ``service`` and a ``device`` is an error (an
        uncalibrated service model would silently disagree with the
        profile).  With neither, the ``"abstract"`` profile applies.
    metrics:
        A :class:`~repro.obs.registry.MetricsRegistry` receiving the
        live counters and histograms (frames in/out, drops by reason,
        queue-wait/compute/latency, batch sizes); defaults to the
        process-global registry.  The registry observes the *simulated*
        clock's durations, matching the report.
    sinks:
        :class:`~repro.obs.sinks.Sink`\\ s receiving one ``serve.frame``
        record per served frame, one ``serve.shed`` per dropped frame
        and a final ``serve.summary`` — the streaming alternative to
        holding ``frame_results`` for the whole run.  The server emits
        but never closes them; lifecycle belongs to the caller.
    max_exact_samples:
        Per-stream bound on exact latency samples before SLO percentiles
        switch to histogram estimates (see :mod:`repro.serve.slo`).
    query:
        A :class:`~repro.query.spec.QuerySpec` evaluated online against
        every stream — each stream gets its own strictly-causal
        :class:`~repro.query.automaton.QueryEvaluator` (cloned per
        stream exactly like tracker state).  Emitted windows flow
        through the sinks (``query.window`` records), the
        ``serve_query_events_total`` counter, and the report's
        ``query_windows`` section.
    """

    def __init__(
        self,
        system: Union[SystemConfig, DetectionSystem],
        *,
        policy: ServePolicy = ServePolicy(),
        service: Optional[ServiceModel] = None,
        device: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        sinks: Union[None, Sink, List[Sink]] = None,
        max_exact_samples: int = DEFAULT_MAX_EXACT_SAMPLES,
        query=None,
        trace=None,
        record_trace: bool = False,
    ):
        if service is None:
            service = ServiceModel.for_device(device or "abstract")
        elif device is not None and device != service.device:
            raise ValueError(
                f"DetectionServer got both an explicit service model and "
                f"device={device!r}; pass one or the other "
                f"(use ServiceModel.for_device({device!r}))"
            )
        self.system = build_system(system) if isinstance(system, SystemConfig) else system
        self.policy = policy
        self.service = service
        if query is not None:
            from repro.query.spec import QuerySpec

            if not isinstance(query, QuerySpec):
                raise TypeError(
                    f"query must be a QuerySpec, got {type(query).__name__}"
                )
        self.query = query
        self.metrics = resolve_registry(metrics)
        self.sinks = as_sinks(sinks)
        self.max_exact_samples = max_exact_samples
        self.batcher = MicroBatcher(
            max_batch_size=policy.max_batch_size,
            max_wait=policy.max_wait_ms / 1e3,
        )
        self._template = self.system.build_pipeline()
        try:
            self._template.per_stream()
            self._shareable = True
        except TypeError:
            # Duck-typed stages predating the per_stream protocol: build
            # fully independent pipelines per stream (no cross-stream
            # stage sharing, hence no coalescing for this system kind).
            self._shareable = False
        self._streams: Dict[str, _StreamState] = {}
        # Compute/timing split (see repro.serve.trace): an optional
        # recorded ComputeTrace to replay, and whether to record this
        # run's own outgoing trace.  Both off by default — the live path
        # is untouched unless a Session wires a trace store in.
        self._trace = trace
        self._record_trace = bool(record_trace)
        self._trace_runner = None
        self.frames_replayed = 0
        self.recorded_trace = None

    # ------------------------------------------------------------------ #

    def _stream_state(self, request: FrameRequest) -> _StreamState:
        state = self._streams.get(request.stream)
        if state is None:
            pipeline = (
                self._template.per_stream()
                if self._shareable
                else self.system.build_pipeline()
            )
            evaluator = None
            if self.query is not None:
                from repro.query.automaton import QueryEvaluator

                evaluator = QueryEvaluator(self.query, request.stream)
            state = self._streams[request.stream] = _StreamState(pipeline, evaluator)
        if state.sequence is not request.sequence:
            state.pipeline.begin_sequence(request.sequence)
            state.sequence = request.sequence
        return state

    def _measured_invocations(self) -> int:
        return sum(
            getattr(d, "invocations", 0) for d in self.system._detectors()
        )

    def _execute(self, batch: List[QueuedFrame]) -> tuple:
        """Run one batch through the engine.

        Returns ``(results, invocations, macs, windows)`` — the last
        being the frames-of-interest windows the streams' query
        evaluators completed on this batch's frames (empty without a
        query).
        """
        if self._trace_runner is not None:
            from repro.serve.trace import traced_execute

            return traced_execute(self, batch)
        work = []
        states = []
        for item in batch:
            state = self._stream_state(item.request)
            states.append(state)
            work.append((state.pipeline, item.request.sequence, item.request.frame))
        before = self._measured_invocations()
        frame_results = run_frame_batch(work, metrics=self.metrics)
        invocations = self._measured_invocations() - before
        macs = sum(fr.ops.total for fr in frame_results)
        windows = []
        for state, fr in zip(states, frame_results):
            state.results.append(fr)
            if state.query is not None:
                window = state.query.observe(fr)
                if window is not None:
                    windows.append(window)
        return frame_results, invocations, macs, windows

    # ------------------------------------------------------------------ #

    def run(self, requests: List[FrameRequest]) -> ServeReport:
        """Serve an arrival schedule to completion; returns the report.

        ``requests`` must be sorted by arrival time (the load generator's
        contract) with frames of each stream in causal order.  Each call
        is independent: per-stream state (trackers, result lists) is
        rebuilt, so back-to-back runs of one schedule produce identical
        reports and never mutate previously returned ones.  (Detector
        caches persist across runs — they are deterministic pure values.)
        """
        # Fresh per-stream pipelines and result lists per run: stale
        # tracker state would make a repeat run diverge, and the report
        # returned below aliases the per-stream result lists.
        self._streams = {}
        if self._trace is not None or self._record_trace:
            from repro.serve.trace import TraceRunner

            self._trace_runner = TraceRunner(
                self._trace, shareable=self._shareable
            )
        else:
            self._trace_runner = None
        wall_start = time.perf_counter()
        account = SLOAccount(
            self.policy.slo_ms / 1e3, max_exact_samples=self.max_exact_samples
        )
        arrivals = deque(requests)
        queue: List[QueuedFrame] = []
        now = 0.0
        batches = 0
        invocations = 0
        compute_seconds = 0.0
        last_completion = 0.0

        # Live-registry handles, resolved once per run (get-or-create).
        m_frames = self.metrics.counter(
            "serve_frames_total", "frames through the server", labels=("direction",)
        )
        m_drops = self.metrics.counter(
            "serve_drops_total", "frames dropped, by reason", labels=("reason",)
        )
        m_batches = self.metrics.counter("serve_batches_total", "dispatched batches")
        m_invocations = self.metrics.counter(
            "serve_invocations_total", "batched detector invocations"
        )
        m_wait = self.metrics.histogram(
            "serve_queue_wait_seconds", "arrival to dispatch",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        m_compute = self.metrics.histogram(
            "serve_compute_seconds", "modeled batch service time",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        m_latency = self.metrics.histogram(
            "serve_latency_seconds", "arrival to completion",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        m_batch_size = self.metrics.histogram(
            "serve_batch_size", "frames per dispatched batch",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        m_depth = self.metrics.gauge(
            "serve_queue_depth", "admitted frames awaiting dispatch"
        )
        m_query = (
            self.metrics.counter(
                "serve_query_events_total",
                "frames-of-interest windows emitted by the scenario query",
                labels=("stream",),
            )
            if self.query is not None
            else None
        )
        query_events = 0

        def shed(request: FrameRequest, reason: str) -> None:
            account.record_shed(request.stream, reason)
            m_drops.inc(labels=(reason,))
            for sink in self.sinks:
                sink.emit(
                    {
                        "record": "serve.shed",
                        "stream": request.stream,
                        "frame": request.frame,
                        "reason": reason,
                        "arrival_s": request.arrival,
                    }
                )

        def admit(request: FrameRequest) -> None:
            # A frame is batchable from the moment it arrives, so its
            # coalescing deadline counts from the arrival timestamp.
            m_frames.inc(labels=("in",))
            if len(queue) >= self.policy.queue_capacity:
                if self.policy.shed_policy == SHED_OLDEST:
                    victim = queue.pop(0)
                    shed(victim.request, "shed_oldest")
                else:
                    shed(request, "reject_newest")
                    return
            queue.append(QueuedFrame(request=request, enqueued=request.arrival))
            m_depth.set(len(queue))

        while arrivals or queue:
            # Fold in everything that has arrived by the current time.
            while arrivals and arrivals[0].arrival <= now:
                admit(arrivals.popleft())
            if not queue:
                # Idle: jump to the next arrival.
                now = max(now, arrivals[0].arrival)
                admit(arrivals.popleft())
                continue
            ready = self.batcher.ready(queue)
            batch, wake = self.batcher.decide(
                now, ready, more_arrivals=bool(arrivals)
            )
            if batch is None:
                # Keep coalescing until the deadline or the next arrival.
                now = min(wake, arrivals[0].arrival) if arrivals else wake
                continue
            for item in batch:
                queue.remove(item)
            m_depth.set(len(queue))
            _, batch_inv, macs, qwindows = self._execute(batch)
            for window in qwindows:
                query_events += 1
                m_query.inc(labels=(window.stream,))
                for sink in self.sinks:
                    sink.emit(
                        {
                            "record": "query.window",
                            "query": self.query.name,
                            "stream": window.stream,
                            "start": window.start,
                            "end": window.end,
                            "phases": list(window.phases),
                        }
                    )
            service = self.service.batch_seconds(batch_inv, macs, len(batch))
            completion = now + service
            batches += 1
            invocations += batch_inv
            compute_seconds += service
            last_completion = completion
            m_batches.inc()
            m_invocations.inc(batch_inv)
            m_batch_size.observe(len(batch))
            m_compute.observe(service)
            for item in batch:
                wait = now - item.request.arrival
                latency = completion - item.request.arrival
                account.record(
                    item.request.stream, wait=wait, compute=service, latency=latency
                )
                m_frames.inc(labels=("out",))
                m_wait.observe(wait)
                m_latency.observe(latency)
                for sink in self.sinks:
                    sink.emit(
                        {
                            "record": "serve.frame",
                            "stream": item.request.stream,
                            "frame": item.request.frame,
                            "wait_ms": wait * 1e3,
                            "compute_ms": service * 1e3,
                            "latency_ms": latency * 1e3,
                        }
                    )
            # The engine is busy until `completion`: arrivals during the
            # batch just queue up (and may be shed) before the next
            # dispatch decision at `completion`.
            while arrivals and arrivals[0].arrival <= completion:
                admit(arrivals.popleft())
            now = completion

        if self._trace_runner is not None:
            self.frames_replayed = self._trace_runner.frames_replayed
            self.recorded_trace = self._trace_runner.out_trace()
        fleet = account.fleet()
        query_windows = None
        if self.query is not None:
            from repro.query.offline import QueryReport

            by_stream = {
                stream: state.query.finish()
                for stream, state in self._streams.items()
                if state.query is not None
            }
            query_windows = QueryReport.build(self.query, by_stream).to_dict()
        summary_record = {
            "record": "serve.summary",
            "frames_offered": len(requests),
            "frames_served": fleet.served,
            "frames_shed": fleet.shed,
            "shed_reasons": dict(sorted(fleet.shed_reasons.items())),
            "batches": batches,
            "invocations": invocations,
            "makespan_seconds": last_completion,
            "p99_ms": fleet.percentile(99.0) * 1e3,
        }
        if self.query is not None:
            summary_record["query"] = self.query.name
            summary_record["query_events"] = query_events
        for sink in self.sinks:
            sink.emit(summary_record)
            sink.flush()
        return ServeReport(
            policy=self.policy,
            service=self.service,
            frames_offered=len(requests),
            frames_served=fleet.served,
            frames_shed=fleet.shed,
            batches=batches,
            invocations=invocations,
            makespan_seconds=last_completion,
            compute_seconds=compute_seconds,
            slo=account.to_dict(),
            query_windows=query_windows,
            frame_results={
                stream: state.results for stream, state in sorted(self._streams.items())
            },
            wall_seconds=time.perf_counter() - wall_start,
        )


class ServeReportStore:
    """Content-addressed store of serialized :class:`ServeReport`\\ s.

    The serving sibling of :class:`~repro.api.cache.ResultCache`, sharing
    its two-level ``<root>/<fp[:2]>/<fp>.json`` layout and atomic-write /
    corrupt-entry-is-a-miss semantics — in the *same* root, so ``repro
    cache stats/ls/prune`` manage serving reports alongside experiment
    results (fingerprints are sha256 content addresses; the two entry
    kinds cannot collide).
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def path_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def load(self, fingerprint: str) -> Optional[ServeReport]:
        try:
            with open(self.path_for(fingerprint), "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            return ServeReport.from_dict(payload["report"])
        except (OSError, json.JSONDecodeError, KeyError, ValueError, TypeError):
            return None

    def store(
        self,
        fingerprint: str,
        report: ServeReport,
        *,
        spec: Optional[Dict[str, Any]] = None,
    ) -> Path:
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "format": "repro-serve-cache/1",
                    "fingerprint": fingerprint,
                    "spec": spec,
                    "report": report.to_dict(),
                },
                fh,
                allow_nan=True,
            )
        os.replace(tmp, path)
        return path

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()
