"""Compute/timing split for the serving simulator: record & replay.

A served configuration factors into two halves.  The **compute phase**
— which detections, track ids, MACs and detector invocations each
admitted frame produces — depends only on the system, the dataset and
the offered load, because the determinism contract keys every sample by
``(model, seed, sequence, frame)`` and tracker state is strictly
per-stream causal.  The **timing phase** — batching, queue waits,
shedding, SLO percentiles — depends on the policy and service-model
knobs a tuning sweep actually varies.

:class:`ComputeTrace` captures the compute phase once: per stream, the
ordered admitted-frame prefix with each frame's lossless
:class:`~repro.core.results.FrameResult` and its detector-invocation
cost.  :class:`TraceStore` content-addresses traces in the same
two-level cache layout as :class:`~repro.api.cache.ResultCache` (atomic
writes, corrupt-entry-is-a-miss), keyed by
:func:`trace_fingerprint` — a digest of the system/dataset/load
sections *only*, so every policy/service/query/replica variation of one
deployment shares a single trace, and serve and fleet runs share it
too.

:class:`TraceRunner` + :func:`traced_execute` implement the replay fast
path used by both :class:`~repro.serve.server.DetectionServer` and
:class:`~repro.fleet.server.FleetServer`: while a stream's admitted
subsequence matches the trace prefix, engine stages are skipped and the
recorded outputs and cost terms are fed through the batcher/SLO/metrics
machinery unchanged; on first divergence (a shed frame changed tracker
state) the stream falls back to live compute for the rest of the run,
after re-running the replayed prefix to rebuild its causal state.
Reports are byte-identical to the live path either way.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.config import config_to_dict
from repro.core.results import FrameResult
from repro.engine.stages import run_frame_batch
from repro.harness.io import _frame_dict, _frame_from_dict

TRACE_FORMAT = "repro-compute-trace/1"


def trace_fingerprint(spec: Any) -> str:
    """Content address of ``spec``'s compute phase.

    Hashes the system/dataset/load sections only — the policy, service
    model, query and fleet-shape knobs all leave the per-frame engine
    outputs unchanged, so every grid point of a tuning sweep maps to the
    same trace.  Works for :class:`~repro.api.spec.ServeSpec` and
    :class:`~repro.fleet.spec.FleetSpec` alike (their sections share one
    shape), which is what lets a fleet sweep replay a trace a bare-server
    run recorded.
    """
    payload = {
        "format": TRACE_FORMAT,
        "system": config_to_dict(spec.system),
        "dataset": spec.dataset.to_dict(),
        "load": spec.load.to_dict(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class FrameRecord:
    """One admitted frame's recorded engine outputs.

    ``invocations`` is the frame's detector-invocation cost term: for
    shareable systems the whole batch's invocation delta (constant per
    system — stage sharing means a batch costs the same number of
    batched detector calls whatever its size), for per-stream pipelines
    the frame's own measured delta.
    """

    __slots__ = ("frame", "result", "invocations")

    def __init__(self, frame: int, result: FrameResult, invocations: int):
        self.frame = frame
        self.result = result
        self.invocations = invocations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invocations": self.invocations,
            "result": _frame_dict(self.result),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FrameRecord":
        result = _frame_from_dict(data["result"])
        return cls(
            frame=result.frame,
            result=result,
            invocations=int(data["invocations"]),
        )


class StreamTrace:
    """One stream's recorded admitted-frame prefix."""

    __slots__ = ("sequence", "records")

    def __init__(self, sequence: str, records: List[FrameRecord]):
        self.sequence = sequence
        self.records = records

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sequence": self.sequence,
            "records": [rec.to_dict() for rec in self.records],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StreamTrace":
        return cls(
            sequence=data["sequence"],
            records=[FrameRecord.from_dict(r) for r in data["records"]],
        )


class ComputeTrace:
    """Recorded compute phase of one (system, dataset, load) deployment."""

    __slots__ = ("streams",)

    def __init__(self, streams: Optional[Dict[str, StreamTrace]] = None):
        self.streams: Dict[str, StreamTrace] = streams or {}

    @property
    def total_frames(self) -> int:
        return sum(len(st.records) for st in self.streams.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": TRACE_FORMAT,
            "streams": {
                name: st.to_dict() for name, st in sorted(self.streams.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ComputeTrace":
        if data.get("format") != TRACE_FORMAT:
            raise ValueError(
                f"not a {TRACE_FORMAT} payload: {data.get('format')!r}"
            )
        return cls(
            {
                name: StreamTrace.from_dict(st)
                for name, st in data["streams"].items()
            }
        )


class TraceStore:
    """Content-addressed on-disk store of :class:`ComputeTrace`\\ s.

    Shares the result cache's ``<root>/<fp[:2]>/<fp>.json`` layout and
    atomic-write / corrupt-entry-is-a-miss semantics, in the same root —
    sweep workers sharing a cache directory can therefore share traces
    without coordination (a concurrent overwrite at worst loses a few
    replayable frames until the next long run re-records them; it never
    corrupts an entry or changes any report).
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def path_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def load(self, fingerprint: str) -> Optional[ComputeTrace]:
        try:
            with open(self.path_for(fingerprint), "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            return ComputeTrace.from_dict(payload["trace"])
        except (OSError, json.JSONDecodeError, KeyError, ValueError, TypeError):
            return None

    def store(self, fingerprint: str, trace: ComputeTrace) -> Path:
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "format": "repro-trace-cache/1",
                    "fingerprint": fingerprint,
                    "trace": trace.to_dict(),
                },
                fh,
                allow_nan=True,
            )
        os.replace(tmp, path)
        return path

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()


class _Cursor:
    """Replay position over one stream's recorded prefix."""

    __slots__ = ("records", "pos", "live")

    def __init__(self, records: List[FrameRecord]):
        self.records = records
        self.pos = 0
        self.live = not records


class TraceRunner:
    """Per-run replay/record driver shared by the serve and fleet servers.

    Holds one cursor per stream over the stored trace (if any) and
    accumulates the run's own outgoing trace — the replayed prefix plus
    whatever was computed live, so a partially-diverged run still leaves
    behind a longer, more reusable trace than it started with.
    """

    def __init__(self, trace: Optional[ComputeTrace], *, shareable: bool):
        self._trace = trace if trace is not None else ComputeTrace()
        self.shareable = shareable
        self.frames_replayed = 0
        self._cursors: Dict[str, _Cursor] = {}
        self._out: Dict[str, StreamTrace] = {}

    def _cursor(self, stream: str, sequence: str) -> _Cursor:
        cur = self._cursors.get(stream)
        if cur is None:
            stored = self._trace.streams.get(stream)
            records = (
                stored.records
                if stored is not None and stored.sequence == sequence
                else []
            )
            cur = self._cursors[stream] = _Cursor(records)
        return cur

    def match(self, stream: str, sequence: str, frame: int) -> Optional[FrameRecord]:
        """The record to replay for this frame, advancing the cursor —
        or ``None`` if the stream is (or just went) past its prefix."""
        cur = self._cursor(stream, sequence)
        if cur.live or cur.pos >= len(cur.records):
            return None
        rec = cur.records[cur.pos]
        if rec.frame != frame:
            return None
        cur.pos += 1
        return rec

    def go_live(self, stream: str, sequence: str) -> List[FrameRecord]:
        """Mark ``stream`` diverged; returns the replayed prefix that
        must be re-run live to rebuild causal tracker state."""
        cur = self._cursor(stream, sequence)
        if cur.live:
            return []
        cur.live = True
        return cur.records[: cur.pos]

    def append(self, stream: str, sequence: str, record: FrameRecord) -> None:
        out = self._out.get(stream)
        if out is None:
            out = self._out[stream] = StreamTrace(sequence, [])
        out.records.append(record)

    def out_trace(self) -> ComputeTrace:
        return ComputeTrace(dict(self._out))


def traced_execute(server: Any, batch: List[Any]):
    """Replay-aware ``_execute`` shared by the serve and fleet servers.

    Splits the batch into replayable frames (the stream's admitted
    subsequence still matches its trace prefix) and live ones, runs only
    the live cohort through the engine, and reassembles per-frame
    results, the batch invocation count and MACs exactly as the live
    path would have measured them:

    * shareable systems make a constant number of batched detector calls
      per dispatch whatever the batch holds, so the live cohort's delta
      *is* the batch's bill; an all-replay batch bills the recorded
      constant instead;
    * per-stream pipelines (no cross-stream coalescing) bill the sum of
      per-frame deltas, measured one singleton engine call per live
      frame — identical grouping to the live path, whose stage groups
      are singletons for these systems anyway.

    A stream that diverges first re-runs its replayed prefix (outside
    the measurement window — those invocations were already billed when
    the replayed frames were dispatched) and stays live from then on.
    """
    runner = server._trace_runner
    n = len(batch)
    states: List[Any] = [None] * n
    records: List[Optional[FrameRecord]] = [None] * n
    live: List[int] = []
    for idx, item in enumerate(batch):
        req = item.request
        state = server._stream_state(req)
        states[idx] = state
        rec = runner.match(req.stream, req.sequence.name, req.frame)
        if rec is not None:
            records[idx] = rec
            continue
        prefix = runner.go_live(req.stream, req.sequence.name)
        for old in prefix:
            run_frame_batch([(state.pipeline, req.sequence, old.frame)])
        live.append(idx)

    frame_results: List[Optional[FrameResult]] = [None] * n
    per_frame_inv: Dict[int, int] = {}
    live_inv = 0
    if live:
        if runner.shareable:
            before = server._measured_invocations()
            outs = run_frame_batch(
                [
                    (states[i].pipeline, batch[i].request.sequence, batch[i].request.frame)
                    for i in live
                ],
                metrics=server.metrics,
            )
            live_inv = server._measured_invocations() - before
            for i, fr in zip(live, outs):
                frame_results[i] = fr
                per_frame_inv[i] = live_inv
        else:
            for i in live:
                before = server._measured_invocations()
                fr = run_frame_batch(
                    [(states[i].pipeline, batch[i].request.sequence, batch[i].request.frame)],
                    metrics=server.metrics,
                )[0]
                delta = server._measured_invocations() - before
                frame_results[i] = fr
                per_frame_inv[i] = delta
                live_inv += delta

    replayed_inv: List[int] = []
    for idx, rec in enumerate(records):
        if rec is not None:
            frame_results[idx] = rec.result
            replayed_inv.append(rec.invocations)
    runner.frames_replayed += len(replayed_inv)

    if runner.shareable:
        invocations = live_inv if live else (max(replayed_inv) if replayed_inv else 0)
    else:
        invocations = live_inv + sum(replayed_inv)
    macs = sum(fr.ops.total for fr in frame_results)

    windows = []
    for idx, item in enumerate(batch):
        state = states[idx]
        fr = frame_results[idx]
        rec = records[idx]
        if rec is None:
            rec = FrameRecord(item.request.frame, fr, per_frame_inv[idx])
        runner.append(item.request.stream, item.request.sequence.name, rec)
        state.results.append(fr)
        if state.query is not None:
            window = state.query.observe(fr)
            if window is not None:
                windows.append(window)
    return frame_results, invocations, macs, windows
