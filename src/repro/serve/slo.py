"""Latency accounting: per-stream and fleet SLO statistics.

Every served frame contributes three durations:

* **queue wait** — arrival to batch dispatch (admission + batching delay);
* **compute** — its batch's service time on the engine;
* **latency** — arrival to completion (wait + compute, end to end).

Frames the admission queue sheds never reach the engine; they are
counted separately **by reason** (``shed_oldest`` — displaced from a
full queue in favour of a fresher arrival; ``reject_newest`` — the
arrival itself refused; a shed frame is an SLO *loss*, not a latency
sample).  All durations are seconds on the server's simulated clock, so
the statistics are exact and deterministic; the reporting layer converts
to milliseconds.

Memory is bounded: each accumulator keeps exact per-frame sample lists
only up to ``max_exact_samples`` frames, while *always* feeding three
fixed-bucket :class:`~repro.obs.registry.Histogram`\\ s (latency, wait,
compute).  Below the bound, percentiles are exact (``numpy.percentile``
over the lists); beyond it the sample lists are released and percentiles
come from the histograms — within one bucket width of exact, which the
test suite pins.  Means, counts and maxima are running scalars and stay
exact at any scale.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.obs.registry import DEFAULT_LATENCY_BUCKETS, Histogram

#: The percentiles every latency report carries.
REPORT_PERCENTILES = (50.0, 95.0, 99.0)

#: Exact per-frame samples kept per accumulator before switching to
#: histogram-estimated percentiles (~100 KB of floats per stream).
DEFAULT_MAX_EXACT_SAMPLES = 4096

#: Shed reason recorded when the caller does not name one.
SHED_UNSPECIFIED = "unspecified"


class LatencyStats:
    """Streaming accumulator of one stream's (or the fleet's) samples.

    Parameters
    ----------
    max_exact_samples:
        Served frames beyond this release the exact sample lists and
        switch :meth:`percentile` to the histogram estimate.
    buckets:
        Upper bounds (seconds) of the backing histograms; the default
        layout spans ~1 ms to ~80 s geometrically.
    """

    def __init__(
        self,
        *,
        max_exact_samples: int = DEFAULT_MAX_EXACT_SAMPLES,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if max_exact_samples < 1:
            raise ValueError(
                f"max_exact_samples must be >= 1, got {max_exact_samples}"
            )
        self.max_exact_samples = int(max_exact_samples)
        self.latencies: List[float] = []
        self.waits: List[float] = []
        self.computes: List[float] = []
        self.hist_latency = Histogram("latency_seconds", buckets=buckets)
        self.hist_wait = Histogram("wait_seconds", buckets=buckets)
        self.hist_compute = Histogram("compute_seconds", buckets=buckets)
        self.served = 0
        self.shed = 0
        self.shed_reasons: Dict[str, int] = {}
        self.violations = 0
        self._sum_wait = 0.0
        self._sum_compute = 0.0
        self._max_latency = 0.0

    @property
    def exact(self) -> bool:
        """Whether percentiles still come from exact sample lists."""
        return self.served <= self.max_exact_samples

    def _overflow(self) -> None:
        """Release the exact lists; the histograms carry on alone."""
        self.latencies = []
        self.waits = []
        self.computes = []

    def add(self, wait: float, compute: float, latency: float, *, violated: bool) -> None:
        wait, compute, latency = float(wait), float(compute), float(latency)
        self.served += 1
        self._sum_wait += wait
        self._sum_compute += compute
        if latency > self._max_latency:
            self._max_latency = latency
        self.hist_wait.observe(wait)
        self.hist_compute.observe(compute)
        self.hist_latency.observe(latency)
        if self.exact:
            self.waits.append(wait)
            self.computes.append(compute)
            self.latencies.append(latency)
        elif self.latencies:
            self._overflow()
        if violated:
            self.violations += 1

    def add_shed(self, reason: str = SHED_UNSPECIFIED) -> None:
        self.shed += 1
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1

    def merge(self, other: "LatencyStats") -> None:
        both_exact = (
            len(self.latencies) == self.served
            and len(other.latencies) == other.served
        )
        self.served += other.served
        self.shed += other.shed
        for reason, count in other.shed_reasons.items():
            self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + count
        self.violations += other.violations
        self._sum_wait += other._sum_wait
        self._sum_compute += other._sum_compute
        self._max_latency = max(self._max_latency, other._max_latency)
        self.hist_latency.merge(other.hist_latency)
        self.hist_wait.merge(other.hist_wait)
        self.hist_compute.merge(other.hist_compute)
        if both_exact and self.exact:
            self.latencies.extend(other.latencies)
            self.waits.extend(other.waits)
            self.computes.extend(other.computes)
        else:
            # Either side overflowed (or the union just did): the merged
            # accumulator is histogram-only from here on.
            self._overflow()

    def _percentile(self, samples: List[float], hist: Histogram, q: float) -> float:
        if self.served == 0:
            return 0.0
        if len(samples) == self.served:
            return float(np.percentile(np.asarray(samples), q))
        return hist.quantile(q)

    def percentile(self, q: float) -> float:
        """The ``q``-th latency percentile in seconds (0 when empty)."""
        return self._percentile(self.latencies, self.hist_latency, q)

    def wait_percentile(self, q: float) -> float:
        """The ``q``-th queue-wait percentile in seconds."""
        return self._percentile(self.waits, self.hist_wait, q)

    def compute_percentile(self, q: float) -> float:
        """The ``q``-th compute-time percentile in seconds."""
        return self._percentile(self.computes, self.hist_compute, q)

    def mean_wait(self) -> float:
        return self._sum_wait / self.served if self.served else 0.0

    def mean_compute(self) -> float:
        return self._sum_compute / self.served if self.served else 0.0

    def to_dict(self, *, include_histograms: bool = False) -> Dict[str, Any]:
        """Summary in milliseconds (JSON-safe; raw samples not included).

        ``include_histograms`` additionally embeds the wait/compute/
        latency bucket snapshots — the fleet entry of a
        :class:`~repro.serve.server.ServeReport` carries them so
        downstream consumers (the tuner, dashboards) can re-estimate any
        quantile without the samples.
        """
        out: Dict[str, Any] = {
            "served": self.served,
            "shed": self.shed,
            "shed_reasons": dict(sorted(self.shed_reasons.items())),
            "violations": self.violations,
            "exact": self.exact,
            "mean_wait_ms": self.mean_wait() * 1e3,
            "mean_compute_ms": self.mean_compute() * 1e3,
            "max_ms": self._max_latency * 1e3,
        }
        for q in REPORT_PERCENTILES:
            out[f"p{q:g}_ms"] = self.percentile(q) * 1e3
            out[f"wait_p{q:g}_ms"] = self.wait_percentile(q) * 1e3
        out["compute_p95_ms"] = self.compute_percentile(95.0) * 1e3
        if include_histograms:
            out["histograms"] = {
                "latency_seconds": self.hist_latency.snapshot(),
                "wait_seconds": self.hist_wait.snapshot(),
                "compute_seconds": self.hist_compute.snapshot(),
            }
        return out


class SLOAccount:
    """Per-stream + fleet accounting against one latency objective.

    Parameters
    ----------
    slo_seconds:
        The end-to-end latency objective; a served frame whose latency
        exceeds it counts as a violation.  ``None`` disables violation
        counting (latency distributions are still tracked).
    max_exact_samples / buckets:
        Forwarded to every per-stream :class:`LatencyStats`.
    """

    def __init__(
        self,
        slo_seconds: Optional[float] = None,
        *,
        max_exact_samples: int = DEFAULT_MAX_EXACT_SAMPLES,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        if slo_seconds is not None and slo_seconds <= 0:
            raise ValueError(f"slo_seconds must be positive, got {slo_seconds}")
        self.slo_seconds = slo_seconds
        self.max_exact_samples = max_exact_samples
        self.buckets = tuple(buckets)
        self.streams: Dict[str, LatencyStats] = {}

    def _new_stats(self) -> LatencyStats:
        return LatencyStats(
            max_exact_samples=self.max_exact_samples, buckets=self.buckets
        )

    def _stream(self, stream: str) -> LatencyStats:
        stats = self.streams.get(stream)
        if stats is None:
            stats = self.streams[stream] = self._new_stats()
        return stats

    def record(self, stream: str, wait: float, compute: float, latency: float) -> None:
        violated = self.slo_seconds is not None and latency > self.slo_seconds
        self._stream(stream).add(wait, compute, latency, violated=violated)

    def record_shed(self, stream: str, reason: str = SHED_UNSPECIFIED) -> None:
        self._stream(stream).add_shed(reason)

    def fleet(self) -> LatencyStats:
        """All streams' samples merged into one distribution."""
        merged = self._new_stats()
        for stats in self.streams.values():
            merged.merge(stats)
        return merged

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo_ms": None if self.slo_seconds is None else self.slo_seconds * 1e3,
            "fleet": self.fleet().to_dict(include_histograms=True),
            "streams": {
                name: stats.to_dict() for name, stats in sorted(self.streams.items())
            },
        }
