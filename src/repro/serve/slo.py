"""Latency accounting: per-stream and fleet SLO statistics.

Every served frame contributes three durations:

* **queue wait** — arrival to batch dispatch (admission + batching delay);
* **compute** — its batch's service time on the engine;
* **latency** — arrival to completion (wait + compute, end to end).

Frames the admission queue sheds never reach the engine; they are
counted separately (a shed frame is an SLO *loss*, not a latency
sample).  All durations are seconds on the server's simulated clock, so
the statistics are exact and deterministic; the reporting layer converts
to milliseconds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

#: The percentiles every latency report carries.
REPORT_PERCENTILES = (50.0, 95.0, 99.0)


class LatencyStats:
    """Streaming accumulator of one stream's (or the fleet's) samples."""

    def __init__(self) -> None:
        self.latencies: List[float] = []
        self.waits: List[float] = []
        self.computes: List[float] = []
        self.shed = 0
        self.violations = 0

    @property
    def served(self) -> int:
        return len(self.latencies)

    def add(self, wait: float, compute: float, latency: float, *, violated: bool) -> None:
        self.waits.append(float(wait))
        self.computes.append(float(compute))
        self.latencies.append(float(latency))
        if violated:
            self.violations += 1

    def add_shed(self) -> None:
        self.shed += 1

    def merge(self, other: "LatencyStats") -> None:
        self.latencies.extend(other.latencies)
        self.waits.extend(other.waits)
        self.computes.extend(other.computes)
        self.shed += other.shed
        self.violations += other.violations

    def percentile(self, q: float) -> float:
        """The ``q``-th latency percentile in seconds (0 when empty)."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))

    def mean_wait(self) -> float:
        return float(np.mean(self.waits)) if self.waits else 0.0

    def mean_compute(self) -> float:
        return float(np.mean(self.computes)) if self.computes else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Summary in milliseconds (JSON-safe; samples are not included)."""
        out: Dict[str, Any] = {
            "served": self.served,
            "shed": self.shed,
            "violations": self.violations,
            "mean_wait_ms": self.mean_wait() * 1e3,
            "mean_compute_ms": self.mean_compute() * 1e3,
            "max_ms": (max(self.latencies) * 1e3) if self.latencies else 0.0,
        }
        for q in REPORT_PERCENTILES:
            out[f"p{q:g}_ms"] = self.percentile(q) * 1e3
        return out


class SLOAccount:
    """Per-stream + fleet accounting against one latency objective.

    Parameters
    ----------
    slo_seconds:
        The end-to-end latency objective; a served frame whose latency
        exceeds it counts as a violation.  ``None`` disables violation
        counting (latency distributions are still tracked).
    """

    def __init__(self, slo_seconds: Optional[float] = None):
        if slo_seconds is not None and slo_seconds <= 0:
            raise ValueError(f"slo_seconds must be positive, got {slo_seconds}")
        self.slo_seconds = slo_seconds
        self.streams: Dict[str, LatencyStats] = {}

    def _stream(self, stream: str) -> LatencyStats:
        stats = self.streams.get(stream)
        if stats is None:
            stats = self.streams[stream] = LatencyStats()
        return stats

    def record(self, stream: str, wait: float, compute: float, latency: float) -> None:
        violated = self.slo_seconds is not None and latency > self.slo_seconds
        self._stream(stream).add(wait, compute, latency, violated=violated)

    def record_shed(self, stream: str) -> None:
        self._stream(stream).add_shed()

    def fleet(self) -> LatencyStats:
        """All streams' samples merged into one distribution."""
        merged = LatencyStats()
        for stats in self.streams.values():
            merged.merge(stats)
        return merged

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo_ms": None if self.slo_seconds is None else self.slo_seconds * 1e3,
            "fleet": self.fleet().to_dict(),
            "streams": {
                name: stats.to_dict() for name, stats in sorted(self.streams.items())
            },
        }
