"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``models``              list the model zoo with op counts
``run``                 run one system on a KITTI-like dataset and report
``table2`` / ``table6`` regenerate the paper's headline tables
``sweep``               the Figure-6 C-thresh sweep
``spec``                run declarative ExperimentSpec JSON (file or grid)

Every run-like command accepts ``--cache-dir`` (default: the
``REPRO_CACHE_DIR`` environment variable) to serve revisited operating
points from the content-addressed result cache, and ``--no-cache`` to
force recomputation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.api.session import Session
from repro.api.spec import DatasetSpec, EvalSpec, ExecSpec, ExperimentSpec
from repro.core.config import SystemConfig
from repro.harness.configs import table2_specs, table6_specs
from repro.harness.sweeps import cthresh_sweep
from repro.harness.tables import format_table
from repro.simdet.zoo import MODEL_ZOO


def _session(args: argparse.Namespace) -> Session:
    cache_dir = None if args.no_cache else args.cache_dir
    return Session(cache_dir=cache_dir)


def _print_cache_stats(session: Session) -> None:
    if session.cache is not None:
        print(
            f"[cache] {session.cache_hits} hit(s), "
            f"{session.cache_misses} miss(es) in {session.cache.root}"
        )


def cmd_models(args: argparse.Namespace) -> int:
    rows = []
    for name, entry in MODEL_ZOO.items():
        if entry.detector_type == "retinanet":
            gops = entry.retinanet_ops(1242, 375).full_frame().total_gops
        else:
            gops = entry.rcnn_ops(1242, 375).full_frame(300).total_gops
        rows.append([name, entry.detector_type, gops])
    print(format_table(["model", "type", "KITTI Gops"], rows, precision=1))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    config = SystemConfig(
        args.kind,
        args.refinement,
        args.proposal,
        c_thresh=args.c_thresh,
        margin=args.margin,
        seed=args.seed,
        input_scale=args.input_scale,
        detailed_ops=args.detailed_ops,
    )
    spec = ExperimentSpec(
        system=config,
        dataset=DatasetSpec(
            "kitti",
            num_sequences=args.sequences,
            frames_per_sequence=args.frames,
        ),
        exec=ExecSpec(workers=args.workers),
    )
    session = _session(args)
    result = session.run(spec)
    print(f"system: {config.label}")
    print(f"ops/frame: {result.ops_gops:.1f} G")
    for diff in ("moderate", "hard"):
        print(
            f"[{diff:>8s}] mAP={result.mean_ap(diff):.3f} "
            f"mD@0.8={result.mean_delay(diff):.2f}"
        )
    _print_cache_stats(session)
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    session = _session(args)
    specs = table2_specs(args.sequences, args.frames, workers=args.workers)
    rows = []
    for spec, res in zip(specs, session.run_many(specs)):
        rows.append(
            [spec.system.label, res.ops_gops, res.mean_ap("moderate"),
             res.mean_ap("hard"), res.mean_delay("moderate"),
             res.mean_delay("hard")]
        )
    print(format_table(
        ["system", "ops(G)", "mAP_M", "mAP_H", "mD_M", "mD_H"], rows,
        title="Table 2 — KITTI main results",
    ))
    _print_cache_stats(session)
    return 0


def cmd_table6(args: argparse.Namespace) -> int:
    session = _session(args)
    specs = table6_specs(args.sequences, workers=args.workers)
    rows = []
    for spec, res in zip(specs, session.run_many(specs)):
        rows.append(
            [spec.system.label, res.evaluation("moderate").mean_ap("voc11"), res.ops_gops]
        )
    print(format_table(["system", "mAP", "ops(G)"], rows,
                       title="Table 6 — CityPersons"))
    _print_cache_stats(session)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    session = _session(args)
    dataset = session.dataset(
        DatasetSpec(
            "kitti",
            num_sequences=args.sequences,
            frames_per_sequence=args.frames,
        )
    )
    points = cthresh_sweep(
        dataset,
        proposal_models=tuple(args.models.split(",")),
        c_values=tuple(float(c) for c in args.c_values.split(",")),
        workers=args.workers,
        session=session,
    )
    rows = [
        [p.proposal_model, "yes" if p.with_tracker else "no",
         p.c_thresh, p.mean_ap, p.mean_delay, p.ops_gops]
        for p in points
    ]
    print(format_table(
        ["proposal", "tracker", "C-thresh", "mAP(H)", "mD@0.8", "ops(G)"],
        rows, title="Figure 6 — C-thresh sweep",
    ))
    _print_cache_stats(session)
    return 0


_EXAMPLE_SPEC = ExperimentSpec(
    system=SystemConfig("catdet", "resnet50", "resnet10a"),
    dataset=DatasetSpec("kitti", num_sequences=4, frames_per_sequence=100),
    eval=EvalSpec(difficulties=("moderate", "hard")),
    exec=ExecSpec(workers=1),
)


def cmd_spec(args: argparse.Namespace) -> int:
    if args.example:
        print(_EXAMPLE_SPEC.to_json(indent=2))
        return 0
    if args.file is None:
        print("error: a spec file is required (or --example)", file=sys.stderr)
        return 2
    with open(args.file, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    entries = payload if isinstance(payload, list) else [payload]
    specs = [ExperimentSpec.from_dict(entry) for entry in entries]
    if args.workers is not None:
        specs = [
            ExperimentSpec(
                system=s.system, dataset=s.dataset, eval=s.eval,
                exec=ExecSpec(executor=s.exec.executor, workers=args.workers),
            )
            for s in specs
        ]
    if args.dry_run:
        for spec in specs:
            print(f"{spec.fingerprint}  {spec.label}")
        return 0
    session = _session(args)
    results = session.run_many(specs)
    diff_names = []
    for spec in specs:
        for name in spec.eval.difficulties:
            if name not in diff_names:
                diff_names.append(name)
    rows = []
    for spec, res in zip(specs, results):
        row = [spec.label, res.ops_gops]
        for name in diff_names:
            if name in spec.eval.difficulties:
                row.append(res.evaluation(name).mean_ap(spec.eval.ap_method))
            else:
                row.append(None)
        rows.append(row + [spec.fingerprint[:12]])
    print(format_table(
        ["spec", "ops(G)", *[f"mAP[{n}]" for n in diff_names], "fingerprint"],
        rows, title=f"{len(specs)} spec(s)",
    ))
    _print_cache_stats(session)
    return 0


def _workers_count(value: str) -> int:
    workers = int(value)
    if workers < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {workers}")
    return workers


def _add_workers_flag(parser: argparse.ArgumentParser, default=1) -> None:
    parser.add_argument(
        "--workers",
        type=_workers_count,
        default=default,
        help="sequence-level worker processes (1 = serial, 0 = one per CPU); "
        "results are identical at any worker count",
    )


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR"),
        help="content-addressed result cache directory "
        "(default: $REPRO_CACHE_DIR; unset = no caching)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache even when a cache dir is configured",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo").set_defaults(func=cmd_models)

    run_p = sub.add_parser("run", help="run one system on KITTI-like data")
    from repro.api.registry import SYSTEMS

    run_p.add_argument("kind", choices=SYSTEMS.names())
    run_p.add_argument("refinement")
    run_p.add_argument("proposal", nargs="?", default=None)
    run_p.add_argument("--c-thresh", type=float, default=0.1)
    run_p.add_argument("--margin", type=float, default=30.0,
                       help="RoI context margin in pixels")
    run_p.add_argument("--input-scale", type=float, default=1.0,
                       help="frame downscale factor before the networks")
    run_p.add_argument("--detailed-ops", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="also compute Table-3 per-source refinement costs "
                       "(--no-detailed-ops speeds up throughput runs)")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--sequences", type=int, default=4)
    run_p.add_argument("--frames", type=int, default=100)
    _add_workers_flag(run_p)
    _add_cache_flags(run_p)
    run_p.set_defaults(func=cmd_run)

    for name, fn in (("table2", cmd_table2), ("table6", cmd_table6)):
        p = sub.add_parser(name, help=f"regenerate paper {name}")
        p.add_argument("--sequences", type=int, default=4 if name == "table2" else 20)
        if name == "table2":
            p.add_argument("--frames", type=int, default=100)
        _add_workers_flag(p)
        _add_cache_flags(p)
        p.set_defaults(func=fn)

    sweep_p = sub.add_parser("sweep", help="Figure-6 C-thresh sweep")
    sweep_p.add_argument("--models", default="resnet10a")
    sweep_p.add_argument("--c-values", default="0.02,0.1,0.3,0.6")
    sweep_p.add_argument("--sequences", type=int, default=3)
    sweep_p.add_argument("--frames", type=int, default=80)
    _add_workers_flag(sweep_p)
    _add_cache_flags(sweep_p)
    sweep_p.set_defaults(func=cmd_sweep)

    spec_p = sub.add_parser(
        "spec", help="run ExperimentSpec JSON (an object or a list of objects)"
    )
    spec_p.add_argument("file", nargs="?", default=None,
                        help="path to a spec JSON file")
    spec_p.add_argument("--example", action="store_true",
                        help="print a template spec and exit")
    spec_p.add_argument("--dry-run", action="store_true",
                        help="print each spec's fingerprint without running")
    _add_workers_flag(spec_p, default=None)
    _add_cache_flags(spec_p)
    spec_p.set_defaults(func=cmd_spec)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
