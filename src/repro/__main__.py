"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``models``              list the model zoo with op counts
``run``                 run one system on a KITTI-like dataset and report
``table2`` / ``table6`` regenerate the paper's headline tables
``sweep``               the Figure-6 C-thresh sweep
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import SystemConfig
from repro.harness.configs import TABLE2_CONFIGS, TABLE6_CONFIGS
from repro.harness.experiment import (
    run_experiment,
    standard_citypersons,
    standard_kitti,
)
from repro.harness.sweeps import cthresh_sweep
from repro.harness.tables import format_table
from repro.metrics.kitti_eval import MODERATE
from repro.simdet.zoo import MODEL_ZOO


def cmd_models(args: argparse.Namespace) -> int:
    rows = []
    for name, entry in MODEL_ZOO.items():
        if entry.detector_type == "retinanet":
            gops = entry.retinanet_ops(1242, 375).full_frame().total_gops
        else:
            gops = entry.rcnn_ops(1242, 375).full_frame(300).total_gops
        rows.append([name, entry.detector_type, gops])
    print(format_table(["model", "type", "KITTI Gops"], rows, precision=1))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    dataset = standard_kitti(args.sequences, args.frames)
    config = SystemConfig(
        args.kind,
        args.refinement,
        args.proposal,
        c_thresh=args.c_thresh,
        seed=args.seed,
    )
    result = run_experiment(config, dataset, workers=args.workers)
    print(f"system: {config.label}")
    print(f"ops/frame: {result.ops_gops:.1f} G")
    for diff in ("moderate", "hard"):
        print(
            f"[{diff:>8s}] mAP={result.mean_ap(diff):.3f} "
            f"mD@0.8={result.mean_delay(diff):.2f}"
        )
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    dataset = standard_kitti(args.sequences, args.frames)
    rows = []
    for config in TABLE2_CONFIGS:
        res = run_experiment(config, dataset, workers=args.workers)
        rows.append(
            [config.label, res.ops_gops, res.mean_ap("moderate"),
             res.mean_ap("hard"), res.mean_delay("moderate"),
             res.mean_delay("hard")]
        )
    print(format_table(
        ["system", "ops(G)", "mAP_M", "mAP_H", "mD_M", "mD_H"], rows,
        title="Table 2 — KITTI main results",
    ))
    return 0


def cmd_table6(args: argparse.Namespace) -> int:
    dataset = standard_citypersons(args.sequences)
    rows = []
    for config in TABLE6_CONFIGS:
        res = run_experiment(
            config, dataset, (MODERATE,), with_delay=False, workers=args.workers
        )
        rows.append(
            [config.label, res.evaluation("moderate").mean_ap("voc11"), res.ops_gops]
        )
    print(format_table(["system", "mAP", "ops(G)"], rows,
                       title="Table 6 — CityPersons"))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    dataset = standard_kitti(args.sequences, args.frames)
    points = cthresh_sweep(
        dataset,
        proposal_models=tuple(args.models.split(",")),
        c_values=tuple(float(c) for c in args.c_values.split(",")),
        workers=args.workers,
    )
    rows = [
        [p.proposal_model, "yes" if p.with_tracker else "no",
         p.c_thresh, p.mean_ap, p.mean_delay, p.ops_gops]
        for p in points
    ]
    print(format_table(
        ["proposal", "tracker", "C-thresh", "mAP(H)", "mD@0.8", "ops(G)"],
        rows, title="Figure 6 — C-thresh sweep",
    ))
    return 0


def _workers_count(value: str) -> int:
    workers = int(value)
    if workers < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {workers}")
    return workers


def _add_workers_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=_workers_count,
        default=1,
        help="sequence-level worker processes (1 = serial, 0 = one per CPU); "
        "results are identical at any worker count",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo").set_defaults(func=cmd_models)

    run_p = sub.add_parser("run", help="run one system on KITTI-like data")
    run_p.add_argument("kind", choices=("single", "cascade", "catdet"))
    run_p.add_argument("refinement")
    run_p.add_argument("proposal", nargs="?", default=None)
    run_p.add_argument("--c-thresh", type=float, default=0.1)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--sequences", type=int, default=4)
    run_p.add_argument("--frames", type=int, default=100)
    _add_workers_flag(run_p)
    run_p.set_defaults(func=cmd_run)

    for name, fn in (("table2", cmd_table2), ("table6", cmd_table6)):
        p = sub.add_parser(name, help=f"regenerate paper {name}")
        p.add_argument("--sequences", type=int, default=4 if name == "table2" else 20)
        if name == "table2":
            p.add_argument("--frames", type=int, default=100)
        _add_workers_flag(p)
        p.set_defaults(func=fn)

    sweep_p = sub.add_parser("sweep", help="Figure-6 C-thresh sweep")
    sweep_p.add_argument("--models", default="resnet10a")
    sweep_p.add_argument("--c-values", default="0.02,0.1,0.3,0.6")
    sweep_p.add_argument("--sequences", type=int, default=3)
    sweep_p.add_argument("--frames", type=int, default=80)
    _add_workers_flag(sweep_p)
    sweep_p.set_defaults(func=cmd_sweep)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
