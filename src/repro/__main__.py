"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``models``              list the model zoo with op counts
``run``                 run one system on a KITTI-like dataset and report
``table2`` / ``table6`` regenerate the paper's headline tables
``table7``              GPU-timing comparison from the calibrated cost model
``sweep``               the Figure-6 C-thresh sweep
``spec``                run declarative ExperimentSpec JSON (file or grid)
``serve``               micro-batched multi-stream serving + SLO report
                        (``--tune`` sweeps policies against an SLO target)
``query``               temporal-logic scenario search over detection/track
                        streams (offline replay or ``--serve`` online)
``loadgen``             generate (and inspect) an open-loop arrival schedule
``fleet``               replicated serving: ``run`` a (possibly autoscaled)
                        replica fleet, ``tune`` the cheapest fleet meeting
                        an SLO, ``report`` a saved fleet report
``worker``              drain a shared cluster work queue (multi-host execution)
``dispatch``            shard a spec grid across the worker fleet
``status``              live fleet/queue health for a cluster queue directory
``cache``               inspect/prune the content-addressed result cache
``bench``               performance harness: systems fps + kernel speedups,
                        appended as ``BENCH_<n>.json`` (``--check`` gates
                        the speedup ratios against the committed baseline)

Every run-like command accepts ``--cache-dir`` (default: the
``REPRO_CACHE_DIR`` environment variable) to serve revisited operating
points from the content-addressed result cache, ``--no-cache`` to force
recomputation, and ``--progress`` to report per-unit completion on
stderr.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.api.session import Session
from repro.api.spec import DatasetSpec, EvalSpec, ExecSpec, ExperimentSpec
from repro.core.config import SystemConfig
from repro.harness.configs import table2_specs, table6_specs
from repro.harness.sweeps import cthresh_sweep
from repro.harness.tables import format_table
from repro.simdet.zoo import MODEL_ZOO


def _session(args: argparse.Namespace) -> Session:
    cache_dir = None if args.no_cache else args.cache_dir
    return Session(cache_dir=cache_dir)


def _progress(args: argparse.Namespace):
    """The ``--progress`` stderr reporter (or None when not requested)."""
    if not getattr(args, "progress", False):
        return None

    def report(done: int, total: int, label: str) -> None:
        print(f"[progress] {done}/{total}  {label}", file=sys.stderr, flush=True)

    return report


def _print_cache_stats(session: Session) -> None:
    if session.cache is not None:
        print(
            f"[cache] {session.cache_hits} hit(s), "
            f"{session.cache_misses} miss(es) in {session.cache.root}"
        )
        if session.trace_hits or session.trace_misses:
            print(
                f"[trace] {session.trace_hits} hit(s), "
                f"{session.trace_misses} miss(es), "
                f"{session.frames_replayed} frame(s) replayed"
            )


def cmd_models(args: argparse.Namespace) -> int:
    rows = []
    for name, entry in MODEL_ZOO.items():
        if entry.detector_type == "retinanet":
            gops = entry.retinanet_ops(1242, 375).full_frame().total_gops
        else:
            gops = entry.rcnn_ops(1242, 375).full_frame(300).total_gops
        rows.append([name, entry.detector_type, gops])
    print(format_table(["model", "type", "KITTI Gops"], rows, precision=1))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    config = SystemConfig(
        args.kind,
        args.refinement,
        args.proposal,
        c_thresh=args.c_thresh,
        margin=args.margin,
        seed=args.seed,
        input_scale=args.input_scale,
        detailed_ops=args.detailed_ops,
        device=args.device,
    )
    spec = ExperimentSpec(
        system=config,
        dataset=DatasetSpec(
            "kitti",
            num_sequences=args.sequences,
            frames_per_sequence=args.frames,
        ),
        exec=ExecSpec(workers=args.workers),
    )
    session = _session(args)
    result = session.run(spec, on_progress=_progress(args))
    print(f"system: {config.label}")
    print(f"ops/frame: {result.ops_gops:.1f} G")
    timing = result.mean_timing()
    if timing is not None:
        print(
            f"modeled latency on {config.device}: "
            f"{timing.gpu_seconds * 1e3:.1f} ms GPU + "
            f"{timing.cpu_seconds * 1e3:.1f} ms CPU = "
            f"{timing.total_seconds * 1e3:.1f} ms/frame "
            f"(~{result.modeled_fps:.1f} fps, "
            f"{timing.num_launches:.1f} launches/frame)"
        )
    for diff in ("moderate", "hard"):
        print(
            f"[{diff:>8s}] mAP={result.mean_ap(diff):.3f} "
            f"mD@0.8={result.mean_delay(diff):.2f}"
        )
    _print_cache_stats(session)
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    session = _session(args)
    specs = table2_specs(args.sequences, args.frames, workers=args.workers)
    rows = []
    for spec, res in zip(specs, session.run_many(specs, on_progress=_progress(args))):
        rows.append(
            [spec.system.label, res.ops_gops, res.mean_ap("moderate"),
             res.mean_ap("hard"), res.mean_delay("moderate"),
             res.mean_delay("hard")]
        )
    print(format_table(
        ["system", "ops(G)", "mAP_M", "mAP_H", "mD_M", "mD_H"], rows,
        title="Table 2 — KITTI main results",
    ))
    _print_cache_stats(session)
    return 0


def cmd_table6(args: argparse.Namespace) -> int:
    session = _session(args)
    specs = table6_specs(args.sequences, workers=args.workers)
    rows = []
    for spec, res in zip(specs, session.run_many(specs, on_progress=_progress(args))):
        rows.append(
            [spec.system.label, res.evaluation("moderate").mean_ap("voc11"), res.ops_gops]
        )
    print(format_table(["system", "mAP", "ops(G)"], rows,
                       title="Table 6 — CityPersons"))
    _print_cache_stats(session)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    session = _session(args)
    dataset = session.dataset(
        DatasetSpec(
            "kitti",
            num_sequences=args.sequences,
            frames_per_sequence=args.frames,
        )
    )
    points = cthresh_sweep(
        dataset,
        proposal_models=tuple(args.models.split(",")),
        c_values=tuple(float(c) for c in args.c_values.split(",")),
        workers=args.workers,
        session=session,
        on_progress=_progress(args),
    )
    rows = [
        [p.proposal_model, "yes" if p.with_tracker else "no",
         p.c_thresh, p.mean_ap, p.mean_delay, p.ops_gops]
        for p in points
    ]
    print(format_table(
        ["proposal", "tracker", "C-thresh", "mAP(H)", "mD@0.8", "ops(G)"],
        rows, title="Figure 6 — C-thresh sweep",
    ))
    _print_cache_stats(session)
    return 0


_EXAMPLE_SPEC = ExperimentSpec(
    system=SystemConfig("catdet", "resnet50", "resnet10a"),
    dataset=DatasetSpec("kitti", num_sequences=4, frames_per_sequence=100),
    eval=EvalSpec(difficulties=("moderate", "hard")),
    exec=ExecSpec(workers=1),
)


def _load_spec_file(path: str, workers) -> list:
    """Read a spec JSON file (an object or a list) into ExperimentSpecs."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    entries = payload if isinstance(payload, list) else [payload]
    specs = [ExperimentSpec.from_dict(entry) for entry in entries]
    if workers is not None:
        specs = [
            ExperimentSpec(
                system=s.system, dataset=s.dataset, eval=s.eval,
                exec=ExecSpec(
                    executor=s.exec.executor,
                    workers=workers,
                    queue_dir=s.exec.queue_dir,
                ),
            )
            for s in specs
        ]
    return specs


def _print_spec_table(specs, results) -> None:
    diff_names = []
    for spec in specs:
        for name in spec.eval.difficulties:
            if name not in diff_names:
                diff_names.append(name)
    rows = []
    for spec, res in zip(specs, results):
        row = [spec.label, res.ops_gops]
        for name in diff_names:
            if name in spec.eval.difficulties:
                row.append(res.evaluation(name).mean_ap(spec.eval.ap_method))
            else:
                row.append(None)
        rows.append(row + [spec.fingerprint[:12]])
    print(format_table(
        ["spec", "ops(G)", *[f"mAP[{n}]" for n in diff_names], "fingerprint"],
        rows, title=f"{len(specs)} spec(s)",
    ))


def cmd_spec(args: argparse.Namespace) -> int:
    if args.example:
        print(_EXAMPLE_SPEC.to_json(indent=2))
        return 0
    if args.file is None:
        print("error: a spec file is required (or --example)", file=sys.stderr)
        return 2
    specs = _load_spec_file(args.file, args.workers)
    if args.dry_run:
        for spec in specs:
            print(f"{spec.fingerprint}  {spec.label}")
        return 0
    session = _session(args)
    results = session.run_many(specs, on_progress=_progress(args))
    _print_spec_table(specs, results)
    _print_cache_stats(session)
    return 0


def _serve_spec_from_args(args: argparse.Namespace):
    from repro.api.spec import ServeSpec
    from repro.serve.loadgen import LoadSpec
    from repro.serve.server import ServePolicy, ServiceModel

    system = SystemConfig(
        args.kind,
        args.refinement,
        args.proposal,
        c_thresh=args.c_thresh,
        seed=args.seed,
        detailed_ops=False,  # throughput path: skip Table-3 extras
    )
    service = None
    if args.overhead_ms is not None or args.gops is not None:
        # Explicit uncalibrated rates; ServeSpec rejects combining them
        # with --device (the profile is what calibrates the model).
        service = ServiceModel(
            invocation_overhead_ms=args.overhead_ms,
            gops_per_second=args.gops,
        )
    return ServeSpec(
        system=system,
        dataset=DatasetSpec(
            args.dataset,
            num_sequences=args.sequences,
            frames_per_sequence=args.seq_frames,
        ),
        load=LoadSpec(
            pattern=args.pattern,
            num_streams=args.streams,
            rate_hz=args.rate,
            frames_per_stream=args.frames,
            seed=args.load_seed,
            rates=args.rate_per_stream,
        ),
        policy=ServePolicy(
            max_batch_size=args.batch_size,
            max_wait_ms=args.max_wait_ms,
            queue_capacity=args.queue_capacity,
            shed_policy=args.shed,
            slo_ms=args.slo_ms,
        ),
        service=service,
        device=args.device,
    )


def _grid_type(convert):
    """An argparse ``type=`` callback parsing \"1,2,4\"-style grids."""

    def parse(text: str):
        try:
            values = tuple(convert(v) for v in text.split(",") if v.strip())
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid grid {text!r} (expected comma-separated "
                f"{convert.__name__} values)"
            ) from None
        if not values:
            raise argparse.ArgumentTypeError(f"empty grid {text!r}")
        return values

    return parse


def _serve_slo_gate(report, slo_p99_ms, slo_wait_p95_ms) -> int:
    """The non-tune ``--slo-p99-ms`` acceptance gate (0 = pass, 1 = fail).

    Fails on a p99 miss, on *any* shed frame (shed frames have no
    latency — dropping load is not a pass), and — when bounded — on a
    queue-wait p95 miss.  Prints one verdict line per check so CI logs
    say exactly which bound broke.
    """
    fleet = report.slo["fleet"]
    failures = []
    p99 = float(fleet["p99_ms"])
    if p99 > slo_p99_ms:
        failures.append(f"p99 {p99:.1f} ms > target {slo_p99_ms:g} ms")
    if report.frames_shed > 0:
        failures.append(f"{report.frames_shed} frame(s) shed under the offered load")
    if slo_wait_p95_ms is not None:
        wait_p95 = float(fleet.get("wait_p95_ms", 0.0))
        if wait_p95 > slo_wait_p95_ms:
            failures.append(
                f"queue-wait p95 {wait_p95:.1f} ms > target {slo_wait_p95_ms:g} ms"
            )
    if failures:
        for failure in failures:
            print(f"SLO FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"SLO PASS: p99 {p99:.1f} ms <= {slo_p99_ms:g} ms, nothing shed")
    return 0


def _write_tune_json(path: str, result) -> None:
    """Machine-readable sweep dump: candidates in grid order with their
    full report payloads — what the CI equality check diffs between a
    serial and a parallel run of the same sweep."""
    payload = {
        "slo_p99_ms": result.slo_p99_ms,
        "slo_wait_p95_ms": result.slo_wait_p95_ms,
        "best": None if result.best is None else result.best.spec.fingerprint,
        "candidates": [
            {
                "fingerprint": c.spec.fingerprint,
                "batch": c.spec.policy.max_batch_size,
                "wait_ms": c.spec.policy.max_wait_ms,
                "feasible": c.feasible,
                "alias_of": c.alias_of,
                "report": c.report.to_dict(),
            }
            for c in result.candidates
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, allow_nan=True)


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs import make_sink

    try:
        spec = _serve_spec_from_args(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    session = _session(args)
    if args.tune:
        if args.slo_p99_ms is None:
            print("error: --tune requires --slo-p99-ms <target>", file=sys.stderr)
            return 2
        try:
            result = session.tune_serve(
                spec,
                slo_p99_ms=args.slo_p99_ms,
                slo_wait_p95_ms=args.slo_wait_p95_ms,
                batch_sizes=args.batch_grid,
                max_waits_ms=args.wait_grid,
                use_cache=not args.no_cache,
                on_progress=_progress(args),
                workers=args.workers,
            )
        except ValueError as exc:
            # e.g. a grid value ServePolicy rejects (batch size 0).
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.tune_out:
            _write_tune_json(args.tune_out, result)
        print(f"tuning: {spec.label} on device {spec.device or 'custom'}")
        print(result.format())
        if result.best is not None:
            print()
            print(f"fingerprint: {result.best.spec.fingerprint[:16]}")
            print(result.best.report.format())
        _print_cache_stats(session)
        return 0 if result.best is not None else 1
    try:
        sink = make_sink(args.sink) if args.sink else None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = session.serve(spec, use_cache=not args.no_cache, sinks=sink)
    finally:
        if sink is not None:
            sink.close()
    print(f"serving: {spec.label}")
    print(f"fingerprint: {spec.fingerprint[:16]}")
    print(report.format())
    _print_cache_stats(session)
    if args.slo_p99_ms is not None:
        return _serve_slo_gate(report, args.slo_p99_ms, args.slo_wait_p95_ms)
    return 0


#: Table 7 reference numbers (seconds per frame, Maxwell Titan X).
_TABLE7_PAPER = {
    "single": (0.193, 0.159),
    "catdet": (0.094, 0.042),
}


def cmd_table7(args: argparse.Namespace) -> int:
    """The paper's GPU-timing comparison from the calibrated cost model.

    Drives the linear model ``T = alpha * W + b`` (plus the appendix's
    greedy region merging) with the actual per-frame regions a CaTDet
    run produces; the CaTDet row averages over every requested sequence.
    Shares its implementation with ``benchmarks/test_table7_gpu_timing``.
    """
    from repro.cost import CostModel
    from repro.gpu.table7 import compute_table7_timings

    session = _session(args)
    dataset = session.dataset(
        DatasetSpec(
            "kitti",
            num_sequences=args.sequences,
            frames_per_sequence=args.frames,
        )
    )
    timings = compute_table7_timings(
        dataset.sequences, CostModel.for_device(args.device)
    )
    single = timings.single
    rows = [
        ["Res50 Faster R-CNN", single.total_seconds, _TABLE7_PAPER["single"][0],
         single.gpu_seconds, _TABLE7_PAPER["single"][1]],
        ["Res10a-Res50 CaTDet", timings.catdet_total_seconds,
         _TABLE7_PAPER["catdet"][0], timings.catdet_gpu_seconds,
         _TABLE7_PAPER["catdet"][1]],
    ]
    print(format_table(
        ["system", "total(s)", "(paper)", "GPU-only(s)", "(paper)"],
        rows,
        title=f"Table 7 — GPU timing on device {args.device!r}",
    ))
    print(
        f"speedup: {single.total_seconds / timings.catdet_total_seconds:.2f}x total, "
        f"{single.gpu_seconds / timings.catdet_gpu_seconds:.2f}x GPU-only "
        f"(paper: {_TABLE7_PAPER['single'][0] / _TABLE7_PAPER['catdet'][0]:.2f}x, "
        f"{_TABLE7_PAPER['single'][1] / _TABLE7_PAPER['catdet'][1]:.2f}x)"
    )
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import LoadSpec, generate_load, schedule_to_dicts

    session = _session(args)
    dataset = session.dataset(
        DatasetSpec(
            args.dataset,
            num_sequences=args.sequences,
            frames_per_sequence=args.seq_frames,
        )
    )
    load = LoadSpec(
        pattern=args.pattern,
        num_streams=args.streams,
        rate_hz=args.rate,
        frames_per_stream=args.frames,
        seed=args.load_seed,
        rates=args.rate_per_stream,
    )
    requests = generate_load(load, dataset)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(
                {"load": load.to_dict(), "schedule": schedule_to_dicts(requests)},
                fh,
                indent=2,
            )
        print(f"wrote {len(requests)} arrivals to {args.out}")
    arrivals_by_stream: dict = {}
    for r in requests:
        arrivals_by_stream.setdefault(r.stream, []).append(r.arrival)
    rows = [[stream, len(times)] for stream, times in sorted(arrivals_by_stream.items())]
    print(format_table(["stream", "frames"], rows,
                       title=f"{load.pattern} load, {load.num_streams} stream(s)"))
    # Aggregate rate = sum of per-stream empirical rates ((N-1) intervals
    # over each stream's own span) — pattern-agnostic, and exact whether
    # a pattern's clock starts at 0 (replay) or at 1/rate (uniform).
    offered = sum(
        (len(times) - 1) / (times[-1] - times[0])
        for times in arrivals_by_stream.values()
        if len(times) > 1 and times[-1] > times[0]
    )
    span = requests[-1].arrival - requests[0].arrival
    if offered > 0:
        print(f"{len(requests)} frames over {span:.2f}s "
              f"(aggregate offered rate ~{offered:.1f} frames/s)")
    else:
        print(f"{len(requests)} frame(s) over {span:.2f}s")
    return 0


def _fleet_spec_from_args(args: argparse.Namespace):
    from repro.fleet import AutoscalerPolicy, FleetSpec
    from repro.serve.loadgen import LoadSpec
    from repro.serve.server import ServePolicy

    system = SystemConfig(
        args.kind,
        args.refinement,
        args.proposal,
        c_thresh=args.c_thresh,
        seed=args.seed,
        detailed_ops=False,  # throughput path: skip Table-3 extras
    )
    autoscaler = None
    if getattr(args, "autoscale", False):
        # The controller defends --slo-p99-ms when given (the same number
        # the acceptance gate checks), else the policy's own SLO.
        budget = args.slo_p99_ms if args.slo_p99_ms is not None else args.slo_ms
        autoscaler = AutoscalerPolicy(
            min_replicas=args.min_replicas,
            max_replicas=args.max_replicas,
            interval_s=args.interval_s,
            cooldown_s=args.cooldown_s,
            slo_p99_ms=budget,
            scale_out_wait_share=args.scale_out_wait_share,
            scale_in_occupancy=args.scale_in_occupancy,
        )
    return FleetSpec(
        system=system,
        dataset=DatasetSpec(
            args.dataset,
            num_sequences=args.sequences,
            frames_per_sequence=args.seq_frames,
        ),
        load=LoadSpec(
            pattern=args.pattern,
            num_streams=args.streams,
            rate_hz=args.rate,
            frames_per_stream=args.frames,
            seed=args.load_seed,
            rates=args.rate_per_stream,
        ),
        policy=ServePolicy(
            max_batch_size=args.batch_size,
            max_wait_ms=args.max_wait_ms,
            queue_capacity=args.queue_capacity,
            shed_policy=args.shed,
            slo_ms=args.slo_ms,
        ),
        replicas=args.replicas,
        devices=args.devices,
        placement=args.placement,
        autoscaler=autoscaler,
    )


def _fleet_slo_gate(report, slo_p99_ms) -> int:
    """The fleet ``--slo-p99-ms`` acceptance gate (0 = pass, 1 = fail).

    Fails on a fleet p99 miss, on *any* shed frame, and on any dead
    stream (a stream that never got a frame served is an availability
    failure no latency percentile can reveal).
    """
    fleet = report.slo["fleet"]
    failures = []
    p99 = float(fleet["p99_ms"])
    if p99 > slo_p99_ms:
        failures.append(f"p99 {p99:.1f} ms > target {slo_p99_ms:g} ms")
    if report.frames_shed > 0:
        failures.append(f"{report.frames_shed} frame(s) shed under the offered load")
    if report.dead_streams:
        failures.append(
            f"{len(report.dead_streams)} dead stream(s): "
            + ", ".join(report.dead_streams)
        )
    if failures:
        for failure in failures:
            print(f"SLO FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"SLO PASS: p99 {p99:.1f} ms <= {slo_p99_ms:g} ms, "
        "nothing shed, no dead streams"
    )
    return 0


def cmd_fleet_run(args: argparse.Namespace) -> int:
    from repro.obs import make_sink

    try:
        spec = _fleet_spec_from_args(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    session = _session(args)
    try:
        sink = make_sink(args.sink) if args.sink else None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    metrics = None
    reporter = None
    if args.status_dir:
        from repro.obs import MetricsRegistry
        from repro.obs.health import HealthReporter, health_dir

        metrics = MetricsRegistry()
        reporter = HealthReporter(
            health_dir(args.status_dir),
            component="fleet",
            component_id=spec.fingerprint[:12],
            registry=metrics,
        )
        reporter.beat(force=True)
    try:
        report = session.serve_fleet(
            spec, use_cache=not args.no_cache, metrics=metrics, sinks=sink
        )
    finally:
        if sink is not None:
            sink.close()
    if reporter is not None:
        reporter.extra.update(
            {
                "label": spec.label,
                "replicas": report.peak_replicas,
                "frames_served": report.frames_served,
                "frames_shed": report.frames_shed,
                "scale_events": len(report.scale_events),
                "p99_ms": float(report.slo["fleet"]["p99_ms"]),
            }
        )
        reporter.beat(force=True)
    print(f"fleet: {spec.label}")
    print(f"fingerprint: {spec.fingerprint[:16]}")
    print(report.format())
    if args.report_out:
        payload = report.to_dict()
        payload["spec"] = spec.to_dict()
        with open(args.report_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote fleet report to {args.report_out}", file=sys.stderr)
    _print_cache_stats(session)
    if args.slo_p99_ms is not None:
        return _fleet_slo_gate(report, args.slo_p99_ms)
    return 0


def cmd_fleet_tune(args: argparse.Namespace) -> int:
    try:
        spec = _fleet_spec_from_args(args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    session = _session(args)
    try:
        result = session.tune_fleet(
            spec,
            slo_p99_ms=args.slo_p99_ms,
            replica_counts=args.replica_grid,
            device_mixes=args.device_mix,
            batch_sizes=args.batch_grid,
            use_cache=not args.no_cache,
            on_progress=_progress(args),
            workers=args.workers,
        )
    except (KeyError, ValueError) as exc:
        # e.g. an unknown device in --device-mix or a batch size the
        # policy rejects.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"tuning fleet: {spec.system.label} @ {spec.dataset.family} "
          f"x{spec.load.num_streams} {spec.load.pattern}")
    print(result.format())
    if result.best is not None:
        print()
        print(f"fingerprint: {result.best.spec.fingerprint[:16]}")
        print(result.best.report.format())
    _print_cache_stats(session)
    return 0 if result.best is not None else 1


def cmd_fleet_report(args: argparse.Namespace) -> int:
    from repro.fleet import FleetReport, FleetSpec

    try:
        with open(args.file, encoding="utf-8") as fh:
            data = json.load(fh)
        report = FleetReport.from_dict(data)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: bad fleet report: {exc}", file=sys.stderr)
        return 2
    if isinstance(data.get("spec"), dict):
        try:
            spec = FleetSpec.from_dict(data["spec"])
        except (ValueError, KeyError, TypeError):
            pass  # report still renders without its spec header
        else:
            print(f"fleet: {spec.label}")
            print(f"fingerprint: {spec.fingerprint[:16]}")
    print(report.format())
    if args.slo_p99_ms is not None:
        return _fleet_slo_gate(report, args.slo_p99_ms)
    return 0


def _example_query():
    from repro.query import (
        BoxInRegion,
        Eventually,
        QuerySpec,
        Region,
        Then,
        TrackPersisted,
    )

    return QuerySpec(
        name="car-enters-and-persists",
        expr=Then(
            (
                Eventually(BoxInRegion(Region(0, 0, 621, 375), label=0, min_score=0.5)),
                Eventually(TrackPersisted(5, label=0), within=40),
            )
        ),
    )


def cmd_query(args: argparse.Namespace) -> int:
    from repro.query import QueryReport, QuerySpec, evaluate_frames

    if args.example:
        print(_example_query().to_json(indent=2))
        return 0
    if args.kind is None or args.spec is None:
        print("error: repro query <system...> --spec QUERY.json (or --example)",
              file=sys.stderr)
        return 2
    try:
        with open(args.spec, encoding="utf-8") as fh:
            query = QuerySpec.from_json(fh.read())
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: bad query spec: {exc}", file=sys.stderr)
        return 2

    system = SystemConfig(
        args.kind,
        args.refinement,
        args.proposal,
        c_thresh=args.c_thresh,
        seed=args.seed,
        detailed_ops=False,
    )
    dataset_spec = DatasetSpec(
        args.dataset,
        num_sequences=args.sequences,
        frames_per_sequence=args.seq_frames,
    )
    session = _session(args)

    if args.serve:
        # Online: per-stream evaluators inside the micro-batched server.
        from repro.api.spec import ServeSpec
        from repro.obs import make_sink
        from repro.serve.loadgen import LoadSpec

        spec = ServeSpec(
            system=system,
            dataset=dataset_spec,
            load=LoadSpec(
                pattern=args.pattern,
                num_streams=args.streams,
                rate_hz=args.rate,
                frames_per_stream=args.frames,
                seed=args.load_seed,
                rates=args.rate_per_stream,
            ),
            query=query,
        )
        try:
            sink = make_sink(args.sink) if args.sink else None
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            report = session.serve(spec, use_cache=not args.no_cache, sinks=sink)
        finally:
            if sink is not None:
                sink.close()
        qreport = report.query_report()
        mode = f"served ({spec.label})"
    else:
        # Offline: replay the same streams through system.stream().
        # Detections are deterministic per (stream, frame), so the
        # windows — and the formatted table — match --serve byte for
        # byte as long as the server sheds nothing (the query default
        # is the replay pattern, which offers load at native fps);
        # batching and arrival timing never change the windows, only
        # dropped frames can.
        import itertools

        from repro.core.pipeline import build_system

        dataset = session.dataset(dataset_spec)
        by_stream = {}
        for i in range(args.streams):
            seq = dataset.sequences[i % len(dataset.sequences)]
            frames = list(
                itertools.islice(build_system(system).stream(seq), args.frames)
            )
            name = f"s{i}:{seq.name}"
            by_stream[name] = evaluate_frames(query, frames, stream=name)
        qreport = QueryReport.build(query, by_stream)
        mode = f"offline replay ({args.streams} stream(s))"

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(qreport.to_dict(), fh, indent=2, sort_keys=True)
        print(f"wrote query report to {args.out}", file=sys.stderr)
    print(f"query: {mode}")
    print(qreport.format())
    _print_cache_stats(session)
    return 0


def _add_serve_flags(parser: argparse.ArgumentParser) -> None:
    """Load-shape flags shared by ``serve`` and ``loadgen``."""
    from repro.serve.loadgen import LOAD_PATTERNS

    parser.add_argument("--dataset", default="kitti",
                        help="registered dataset family supplying the streams")
    parser.add_argument("--streams", type=int, default=4,
                        help="concurrent camera streams")
    parser.add_argument("--pattern", choices=LOAD_PATTERNS.names(),
                        default="poisson", help="arrival pattern")
    parser.add_argument("--rate", type=float, default=15.0,
                        help="per-stream arrival rate in frames/s "
                        "(replay uses the sequence's native fps)")
    parser.add_argument("--frames", type=int, default=60,
                        help="frames offered per stream")
    parser.add_argument("--sequences", type=int, default=None,
                        help="dataset sequences to generate (default: "
                        "the family's own default)")
    parser.add_argument("--seq-frames", type=int, default=None,
                        help="frames per generated sequence")
    parser.add_argument("--load-seed", type=int, default=0,
                        help="arrival-schedule seed (stochastic patterns)")
    parser.add_argument("--rate-per-stream", type=_grid_type(float),
                        default=None, metavar="R0,R1,...",
                        help="heterogeneous per-stream rates in frames/s "
                        "(stream i uses rate i mod len; overrides --rate)")


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.cluster.queue import FileWorkQueue
    from repro.cluster.worker import Worker, default_cache_dir

    queue = FileWorkQueue(
        args.queue_dir, lease_ttl=args.lease_ttl, max_attempts=args.max_attempts
    )
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir(queue.root))
    worker = Worker(queue, cache_dir=cache_dir)
    print(f"[worker {worker.worker_id}] polling {queue.root} "
          f"(lease ttl {queue.lease_ttl:.0f}s, cache: {cache_dir or 'off'})",
          file=sys.stderr, flush=True)

    def on_task(processed: int) -> None:
        print(f"[worker {worker.worker_id}] {processed} task(s) done "
              f"({worker.tasks_failed} failed)", file=sys.stderr, flush=True)

    try:
        processed = worker.run(
            max_tasks=args.max_tasks,
            idle_timeout=args.idle_timeout,
            poll_interval=args.poll,
            on_task=on_task,
        )
    except KeyboardInterrupt:
        print(f"[worker {worker.worker_id}] interrupted", file=sys.stderr)
        return 130
    print(f"[worker {worker.worker_id}] exiting after {processed} task(s)",
          file=sys.stderr)
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    from repro.obs import gather_status, format_status

    status = gather_status(args.queue_dir, stale_after=args.stale_after)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(format_status(status))
    return 0


def cmd_dispatch(args: argparse.Namespace) -> int:
    from repro.cluster.coordinator import (
        ClusterTaskError,
        ClusterTimeout,
        dispatch_specs,
    )
    from repro.cluster.queue import FileWorkQueue
    from repro.cluster.worker import default_cache_dir

    specs = _load_spec_file(args.file, args.workers)
    queue = FileWorkQueue(args.queue_dir, lease_ttl=args.lease_ttl)
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = args.cache_dir or default_cache_dir(queue.root)
    try:
        out = dispatch_specs(
            queue,
            specs,
            cache_dir=cache_dir,
            wait=args.wait,
            timeout=args.timeout,
            on_progress=_progress(args),
        )
    except (ClusterTaskError, ClusterTimeout) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not args.wait:
        for task_id in out:
            print(task_id)
        stats = queue.stats()
        print(f"[queue] {stats['pending']} pending, {stats['leased']} leased, "
              f"{stats['done']} done, {stats['dead']} dead in {queue.root}",
              file=sys.stderr)
        return 0
    _print_spec_table(specs, out)
    return 0


def _parse_age(text: str) -> float:
    """``"7d"`` / ``"12h"`` / ``"30m"`` / ``"45s"`` / plain seconds → seconds."""
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}
    t = text.strip().lower()
    try:
        if t and t[-1] in units:
            return float(t[:-1]) * units[t[-1]]
        return float(t)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid age {text!r} (examples: 45s, 30m, 12h, 7d)"
        ) from None


def _format_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} GiB"  # pragma: no cover - unreachable


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.api.cache import ResultCache

    if args.cache_dir is None:
        print("error: a cache directory is required "
              "(--cache-dir or $REPRO_CACHE_DIR)", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        print(f"root:    {stats['root']}")
        print(f"entries: {stats['entries']}")
        print(f"size:    {_format_bytes(stats['total_bytes'])}")
        if stats["entries"]:
            print(f"newest:  {stats['newest_age_seconds']:.0f}s ago")
            print(f"oldest:  {stats['oldest_age_seconds']:.0f}s ago")
        return 0
    if args.cache_command == "ls":
        entries = cache.entries(with_labels=True)
        rows = [
            [e.fingerprint[:16], _format_bytes(e.size_bytes),
             f"{max(0.0, time.time() - e.mtime):.0f}s",
             e.label or "?"]
            for e in entries
        ]
        print(format_table(["fingerprint", "size", "age", "spec"], rows,
                           title=f"{len(entries)} cached result(s)"))
        return 0
    if args.cache_command == "prune":
        removed = cache.prune(args.older_than)
        print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} "
              f"older than {args.older_than:.0f}s from {cache.root}")
        return 0
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the perf harness; write the next BENCH_<n>.json trajectory entry.

    The baseline for ``--check`` is the highest-index committed entry in
    the output directory *before* this run's file is written, so CI can
    write (and upload) the fresh entry and still gate against the
    committed one.
    """
    from pathlib import Path

    from repro.bench import (
        REGRESSION_TOLERANCE,
        check_regression,
        latest_bench,
        run_bench,
        write_bench,
    )

    root = Path(args.output_dir)
    on_progress = None
    if getattr(args, "progress", False):
        def on_progress(label: str) -> None:
            print(f"[bench] {label}", file=sys.stderr, flush=True)

    baseline = latest_bench(root)
    payload = run_bench(
        quick=args.quick, num_tracks=args.tracks, on_progress=on_progress
    )

    rows = [
        [name, f"{s['fps']:.1f}", str(s["frames"])]
        for name, s in payload["systems"].items()
    ]
    print(format_table(["system", "fps", "frames"], rows, title="systems"))
    rows = [
        [name, f"{k['speedup']:.2f}x"] for name, k in payload["kernels"].items()
    ]
    print(format_table(["kernel", "vectorized/scalar"], rows, title="kernels"))
    overhead = payload.get("obs_overhead")
    if overhead is not None:
        print(
            f"obs overhead: {overhead['instrumented_fps']:.1f} fps instrumented "
            f"vs {overhead['plain_fps']:.1f} fps plain "
            f"(ratio {overhead['ratio']:.3f})"
        )

    if not args.no_write:
        path = write_bench(root, payload)
        print(f"wrote {path}")

    if args.check:
        if baseline is None:
            print("no committed BENCH_*.json baseline; nothing to check")
            return 0
        index, base_payload = baseline
        failures = check_regression(payload, base_payload)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(
            f"gated speedups within {REGRESSION_TOLERANCE:.0%} "
            f"of BENCH_{index}.json"
        )
    return 0


def _workers_count(value: str) -> int:
    workers = int(value)
    if workers < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {workers}")
    return workers


def _add_workers_flag(parser: argparse.ArgumentParser, default=1) -> None:
    parser.add_argument(
        "--workers",
        type=_workers_count,
        default=default,
        help="sequence-level worker processes (1 = serial, 0 = one per CPU); "
        "results are identical at any worker count",
    )


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR"),
        help="content-addressed result cache directory "
        "(default: $REPRO_CACHE_DIR; unset = no caching)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache even when a cache dir is configured",
    )


def _add_progress_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--progress",
        action="store_true",
        help="report per-unit completion on stderr while running",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo").set_defaults(func=cmd_models)

    run_p = sub.add_parser("run", help="run one system on KITTI-like data")
    from repro.api.registry import SYSTEMS

    run_p.add_argument("kind", choices=SYSTEMS.names())
    run_p.add_argument("refinement")
    run_p.add_argument("proposal", nargs="?", default=None)
    run_p.add_argument("--c-thresh", type=float, default=0.1)
    run_p.add_argument("--margin", type=float, default=30.0,
                       help="RoI context margin in pixels")
    run_p.add_argument("--input-scale", type=float, default=1.0,
                       help="frame downscale factor before the networks")
    run_p.add_argument("--detailed-ops", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="also compute Table-3 per-source refinement costs "
                       "(--no-detailed-ops speeds up throughput runs)")
    run_p.add_argument("--seed", type=int, default=0)
    from repro.cost import DEVICE_PROFILES as _DEVICES

    run_p.add_argument("--device", choices=_DEVICES.names(), default=None,
                       help="modeled device: also report estimated per-frame "
                       "latency from the calibrated cost model")
    run_p.add_argument("--sequences", type=int, default=4)
    run_p.add_argument("--frames", type=int, default=100)
    _add_workers_flag(run_p)
    _add_cache_flags(run_p)
    _add_progress_flag(run_p)
    run_p.set_defaults(func=cmd_run)

    for name, fn in (("table2", cmd_table2), ("table6", cmd_table6)):
        p = sub.add_parser(name, help=f"regenerate paper {name}")
        p.add_argument("--sequences", type=int, default=4 if name == "table2" else 20)
        if name == "table2":
            p.add_argument("--frames", type=int, default=100)
        _add_workers_flag(p)
        _add_cache_flags(p)
        _add_progress_flag(p)
        p.set_defaults(func=fn)

    table7_p = sub.add_parser(
        "table7", help="paper Table 7 — GPU timing from the calibrated cost model"
    )
    table7_p.add_argument("--device", choices=_DEVICES.names(), default="titanx",
                          help="device profile to time on (paper: titanx)")
    table7_p.add_argument("--sequences", type=int, default=1,
                          help="sequences the CaTDet row averages over")
    table7_p.add_argument("--frames", type=int, default=60,
                          help="frames per sequence of the driving CaTDet run")
    _add_cache_flags(table7_p)
    table7_p.set_defaults(func=cmd_table7)

    sweep_p = sub.add_parser("sweep", help="Figure-6 C-thresh sweep")
    sweep_p.add_argument("--models", default="resnet10a")
    sweep_p.add_argument("--c-values", default="0.02,0.1,0.3,0.6")
    sweep_p.add_argument("--sequences", type=int, default=3)
    sweep_p.add_argument("--frames", type=int, default=80)
    _add_workers_flag(sweep_p)
    _add_cache_flags(sweep_p)
    _add_progress_flag(sweep_p)
    sweep_p.set_defaults(func=cmd_sweep)

    spec_p = sub.add_parser(
        "spec", help="run ExperimentSpec JSON (an object or a list of objects)"
    )
    spec_p.add_argument("file", nargs="?", default=None,
                        help="path to a spec JSON file")
    spec_p.add_argument("--example", action="store_true",
                        help="print a template spec and exit")
    spec_p.add_argument("--dry-run", action="store_true",
                        help="print each spec's fingerprint without running")
    _add_workers_flag(spec_p, default=None)
    _add_cache_flags(spec_p)
    _add_progress_flag(spec_p)
    spec_p.set_defaults(func=cmd_spec)

    serve_p = sub.add_parser(
        "serve", help="micro-batched multi-stream serving with an SLO report"
    )
    serve_p.add_argument("kind", choices=SYSTEMS.names())
    serve_p.add_argument("refinement")
    serve_p.add_argument("proposal", nargs="?", default=None)
    serve_p.add_argument("--c-thresh", type=float, default=0.1)
    serve_p.add_argument("--seed", type=int, default=0,
                         help="detector-simulation seed")
    _add_serve_flags(serve_p)
    serve_p.add_argument("--batch-size", type=int, default=8,
                         help="micro-batch flush size (1 = unbatched)")
    serve_p.add_argument("--max-wait-ms", type=float, default=25.0,
                         help="max coalescing delay for the oldest ready frame")
    serve_p.add_argument("--queue-capacity", type=int, default=64,
                         help="admission queue bound before shedding")
    serve_p.add_argument("--shed", choices=("oldest", "newest"), default="oldest",
                         help="which frame to drop when the queue overflows")
    serve_p.add_argument("--slo-ms", type=float, default=200.0,
                         help="end-to-end latency objective")
    from repro.cost import DEVICE_PROFILES

    serve_p.add_argument("--device", choices=DEVICE_PROFILES.names(), default=None,
                         help="calibrated device profile the service model is "
                         "derived from (default: abstract)")
    serve_p.add_argument("--overhead-ms", type=float, default=None,
                         help="explicit fixed cost per batched detector "
                         "invocation (incompatible with --device)")
    serve_p.add_argument("--gops", type=float, default=None,
                         help="explicit accelerator throughput in Gops/s "
                         "(incompatible with --device)")
    serve_p.add_argument("--tune", action="store_true",
                         help="sweep (batch size, max wait) policies and pick "
                         "the cheapest one meeting --slo-p99-ms")
    serve_p.add_argument("--slo-p99-ms", type=float, default=None,
                         help="fleet p99 latency target: --tune feasibility, "
                         "or (without --tune) an acceptance gate — exit 1 "
                         "when p99 misses or any frame is shed")
    serve_p.add_argument("--slo-wait-p95-ms", type=float, default=None,
                         help="additional fleet p95 queue-wait bound for "
                         "--tune feasibility and the --slo-p99-ms gate")
    serve_p.add_argument("--sink", default=None, metavar="SPEC",
                         help="stream per-frame/shed/summary records to a "
                         "result sink: jsonl:<path>, table, or null")
    serve_p.add_argument("--batch-grid", type=_grid_type(int), default=(1, 2, 4, 8),
                         help="comma-separated max_batch_size grid for --tune")
    serve_p.add_argument("--wait-grid", type=_grid_type(float),
                         default=(0.0, 10.0, 25.0, 50.0),
                         help="comma-separated max_wait_ms grid for --tune")
    serve_p.add_argument("--workers", type=_workers_count, default=1,
                         help="evaluate cold --tune grid points in N "
                         "processes sharing the cache (1 = serial, 0 = one "
                         "per CPU); results are identical at any count")
    serve_p.add_argument("--tune-out", default=None, metavar="FILE",
                         help="write the --tune sweep (candidates in grid "
                         "order, full reports) as JSON to FILE")
    _add_cache_flags(serve_p)
    _add_progress_flag(serve_p)
    serve_p.set_defaults(func=cmd_serve)

    query_p = sub.add_parser(
        "query", help="scenario query: temporal-logic event search over streams"
    )
    query_p.add_argument("kind", nargs="?", default=None, choices=SYSTEMS.names())
    query_p.add_argument("refinement", nargs="?", default=None)
    query_p.add_argument("proposal", nargs="?", default=None)
    query_p.add_argument("--c-thresh", type=float, default=0.1)
    query_p.add_argument("--seed", type=int, default=0,
                         help="detector-simulation seed")
    query_p.add_argument("--spec", default=None, metavar="FILE",
                         help="query spec JSON file (see --example)")
    query_p.add_argument("--example", action="store_true",
                         help="print a template query spec and exit")
    _add_serve_flags(query_p)
    query_p.add_argument("--serve", action="store_true",
                         help="evaluate online inside the micro-batched "
                         "server instead of offline replay (same windows "
                         "either way — that's the determinism contract)")
    query_p.add_argument("--sink", default=None, metavar="SPEC",
                         help="(with --serve) stream query.window records "
                         "to a result sink: jsonl:<path>, table, or null")
    query_p.add_argument("--out", default=None,
                         help="write the report JSON to this path")
    _add_cache_flags(query_p)
    # Unlike `serve`, default to the replay pattern: it offers load at the
    # sequence's native fps, so nothing is shed and --serve windows match
    # the offline replay byte for byte.
    query_p.set_defaults(func=cmd_query, pattern="replay")

    loadgen_p = sub.add_parser(
        "loadgen", help="generate an open-loop arrival schedule over a dataset"
    )
    _add_serve_flags(loadgen_p)
    loadgen_p.add_argument("--out", default=None,
                           help="write the schedule as JSON to this path")
    _add_cache_flags(loadgen_p)
    loadgen_p.set_defaults(func=cmd_loadgen)

    from repro.fleet import AutoscalerPolicy as _AS
    from repro.fleet.router import PLACEMENT_POLICIES

    fleet_p = sub.add_parser(
        "fleet",
        help="replicated serving: run/tune a replica fleet, inspect a report",
    )
    fleet_sub = fleet_p.add_subparsers(dest="fleet_command", required=True)

    def _add_fleet_flags(p: argparse.ArgumentParser) -> None:
        """System, load, policy and fleet-shape flags shared by run/tune."""
        p.add_argument("kind", choices=SYSTEMS.names())
        p.add_argument("refinement")
        p.add_argument("proposal", nargs="?", default=None)
        p.add_argument("--c-thresh", type=float, default=0.1)
        p.add_argument("--seed", type=int, default=0,
                       help="detector-simulation seed")
        _add_serve_flags(p)
        p.add_argument("--batch-size", type=int, default=8,
                       help="per-replica micro-batch flush size")
        p.add_argument("--max-wait-ms", type=float, default=25.0,
                       help="max coalescing delay for the oldest ready frame")
        p.add_argument("--queue-capacity", type=int, default=64,
                       help="per-replica admission queue bound before shedding")
        p.add_argument("--shed", choices=("oldest", "newest"), default="oldest",
                       help="which frame to drop when a replica queue overflows")
        p.add_argument("--slo-ms", type=float, default=200.0,
                       help="end-to-end latency objective")
        p.add_argument("--replicas", type=int, default=2,
                       help="initial replica count (the static count "
                       "without --autoscale)")
        p.add_argument("--devices", type=_grid_type(str),
                       default=("abstract",), metavar="DEV0,DEV1,...",
                       help="device-profile cycle: spawned replica i runs on "
                       "devices[i %% len] (one name = homogeneous fleet)")
        p.add_argument("--placement", choices=PLACEMENT_POLICIES.names(),
                       default="least_loaded",
                       help="policy routing new streams to replicas "
                       "(sticky thereafter)")
        _add_cache_flags(p)

    fleet_run_p = fleet_sub.add_parser(
        "run", help="serve the offered load over a (possibly autoscaled) fleet"
    )
    _add_fleet_flags(fleet_run_p)
    fleet_run_p.add_argument("--autoscale", action="store_true",
                             help="enable the metrics-driven replica-count "
                             "control loop")
    fleet_run_p.add_argument("--min-replicas", type=int, default=_AS.min_replicas,
                             help="autoscaler lower bound")
    fleet_run_p.add_argument("--max-replicas", type=int, default=_AS.max_replicas,
                             help="autoscaler upper bound")
    fleet_run_p.add_argument("--interval-s", type=float, default=_AS.interval_s,
                             help="control-tick period (simulated seconds)")
    fleet_run_p.add_argument("--cooldown-s", type=float, default=_AS.cooldown_s,
                             help="minimum time between scale actions")
    fleet_run_p.add_argument("--scale-out-wait-share", type=float,
                             default=_AS.scale_out_wait_share,
                             help="budget share the windowed queue-wait p95 "
                             "may consume before scaling out")
    fleet_run_p.add_argument("--scale-in-occupancy", type=float,
                             default=_AS.scale_in_occupancy,
                             help="windowed mean batch size below this "
                             "fraction of --batch-size scales in")
    fleet_run_p.add_argument("--slo-p99-ms", type=float, default=None,
                             help="fleet p99 acceptance gate (exit 1 on a "
                             "miss, any shed frame, or a dead stream); with "
                             "--autoscale, also the controller's budget")
    fleet_run_p.add_argument("--sink", default=None, metavar="SPEC",
                             help="stream per-frame/fleet.scale/summary "
                             "records to a result sink: jsonl:<path>, table, "
                             "or null")
    fleet_run_p.add_argument("--report-out", default=None, metavar="FILE",
                             help="write the fleet report (plus its spec) as "
                             "JSON for `repro fleet report`")
    fleet_run_p.add_argument("--status-dir", default=None, metavar="DIR",
                             help="publish a fleet health heartbeat under "
                             "DIR/health for `repro status DIR`")
    fleet_run_p.set_defaults(func=cmd_fleet_run)

    fleet_tune_p = fleet_sub.add_parser(
        "tune", help="sweep replica count x device mix x batch size for the "
        "cheapest fleet meeting --slo-p99-ms"
    )
    _add_fleet_flags(fleet_tune_p)
    fleet_tune_p.add_argument("--slo-p99-ms", type=float, required=True,
                              help="fleet p99 feasibility target")
    fleet_tune_p.add_argument("--replica-grid", type=_grid_type(int),
                              default=None, metavar="N0,N1,...",
                              help="replica-count axis (default: 1,2,3,4)")
    fleet_tune_p.add_argument("--device-mix", action="append",
                              type=_grid_type(str), default=None,
                              metavar="DEV0,DEV1,...",
                              help="a device-cycle axis point; repeat the "
                              "flag per mix (default: just --devices)")
    fleet_tune_p.add_argument("--batch-grid", type=_grid_type(int),
                              default=None, metavar="B0,B1,...",
                              help="max_batch_size axis (default: just "
                              "--batch-size)")
    fleet_tune_p.add_argument("--workers", type=_workers_count, default=1,
                              help="evaluate cold grid points in N processes "
                              "sharing the cache (1 = serial, 0 = one per "
                              "CPU); results are identical at any count")
    _add_progress_flag(fleet_tune_p)
    fleet_tune_p.set_defaults(func=cmd_fleet_tune)

    fleet_report_p = fleet_sub.add_parser(
        "report", help="pretty-print (and optionally gate) a saved fleet "
        "report JSON from --report-out"
    )
    fleet_report_p.add_argument("file", help="fleet report JSON path")
    fleet_report_p.add_argument("--slo-p99-ms", type=float, default=None,
                                help="re-apply the acceptance gate to the "
                                "saved report")
    fleet_report_p.set_defaults(func=cmd_fleet_report)

    from repro.cluster.queue import DEFAULT_LEASE_TTL, DEFAULT_MAX_ATTEMPTS

    worker_p = sub.add_parser(
        "worker", help="drain a shared cluster work queue (multi-host execution)"
    )
    worker_p.add_argument("queue_dir", help="shared queue directory")
    worker_p.add_argument("--max-tasks", type=int, default=None,
                          help="exit after this many tasks (default: unlimited)")
    worker_p.add_argument("--idle-timeout", type=float, default=None,
                          help="exit after the queue stays empty this many "
                          "seconds (default: poll forever)")
    worker_p.add_argument("--poll", type=float, default=0.2,
                          help="queue poll interval in seconds")
    worker_p.add_argument("--lease-ttl", type=float, default=DEFAULT_LEASE_TTL,
                          help="seconds without a heartbeat before a task is "
                          "re-leased to another worker")
    worker_p.add_argument("--max-attempts", type=int, default=DEFAULT_MAX_ATTEMPTS,
                          help="lease grants before a task is dead-lettered")
    worker_p.add_argument("--cache-dir", default=None,
                          help="shared result store (default: <queue-dir>/cache)")
    worker_p.add_argument("--no-cache", action="store_true",
                          help="do not route results through a shared cache "
                          "(envelopes still carry them inline)")
    worker_p.set_defaults(func=cmd_worker)

    from repro.obs.health import DEFAULT_STALE_AFTER

    status_p = sub.add_parser(
        "status", help="live fleet/queue health for a cluster queue directory"
    )
    status_p.add_argument("queue_dir", help="shared queue directory to inspect")
    status_p.add_argument("--json", action="store_true",
                          help="emit the raw status document instead of tables")
    status_p.add_argument("--stale-after", type=float, default=DEFAULT_STALE_AFTER,
                          help="seconds without a heartbeat before a component "
                          "is reported stale")
    status_p.set_defaults(func=cmd_status)

    dispatch_p = sub.add_parser(
        "dispatch", help="shard an ExperimentSpec grid across the worker fleet"
    )
    dispatch_p.add_argument("file", help="spec JSON (an object or a list)")
    dispatch_p.add_argument("--queue-dir", required=True,
                            help="shared queue directory workers poll")
    dispatch_p.add_argument("--wait", action=argparse.BooleanOptionalAction,
                            default=True,
                            help="block until every shard finishes and print "
                            "the result table (--no-wait prints task ids)")
    dispatch_p.add_argument("--timeout", type=float, default=None,
                            help="overall wall-clock budget in seconds")
    dispatch_p.add_argument("--lease-ttl", type=float, default=DEFAULT_LEASE_TTL,
                            help="straggler re-lease threshold in seconds")
    dispatch_p.add_argument("--cache-dir", default=None,
                            help="shared result store (default: <queue-dir>/cache)")
    dispatch_p.add_argument("--no-cache", action="store_true",
                            help="do not serve or store shard results via the "
                            "shared cache")
    _add_workers_flag(dispatch_p, default=None)
    _add_progress_flag(dispatch_p)
    dispatch_p.set_defaults(func=cmd_dispatch)

    cache_p = sub.add_parser(
        "cache", help="inspect/prune the content-addressed result cache"
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    cache_cmds = {
        "stats": cache_sub.add_parser("stats", help="entry count, bytes, age range"),
        "ls": cache_sub.add_parser("ls", help="list entries with sizes, ages and specs"),
        "prune": cache_sub.add_parser("prune", help="delete old entries"),
    }
    for p in cache_cmds.values():
        p.add_argument(
            "--cache-dir",
            default=os.environ.get("REPRO_CACHE_DIR"),
            help="result cache directory (default: $REPRO_CACHE_DIR)",
        )
        p.set_defaults(func=cmd_cache)
    cache_cmds["prune"].add_argument(
        "--older-than", type=_parse_age, required=True,
        help="age threshold: 45s, 30m, 12h, 7d or plain seconds",
    )

    bench_p = sub.add_parser(
        "bench",
        help="perf harness: systems fps + kernel speedups -> BENCH_<n>.json",
    )
    bench_p.add_argument(
        "--quick", action="store_true",
        help="reduced frames and repeats (CI smoke; noisier numbers)",
    )
    bench_p.add_argument(
        "--tracks", type=int, default=60,
        help="concurrent tracks in the tracker kernel benchmarks",
    )
    bench_p.add_argument(
        "--output-dir", default=".",
        help="directory holding the BENCH_<n>.json trajectory (default: cwd; "
        "the baseline for --check is read from here before writing)",
    )
    bench_p.add_argument(
        "--no-write", action="store_true",
        help="print the summary without writing a BENCH file",
    )
    bench_p.add_argument(
        "--check", action="store_true",
        help="exit 1 if a gated speedup ratio drops more than the tolerance "
        "below the committed baseline entry",
    )
    _add_progress_flag(bench_p)
    bench_p.set_defaults(func=cmd_bench)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
