"""CaTDet reproduction: cascaded tracked detection from video (MLSYS 2019).

Public API highlights — the declarative, cached path::

    from repro import ExperimentSpec, Session, SystemConfig

    session = Session(cache_dir=".repro-cache")
    result = session.run(ExperimentSpec(SystemConfig("catdet", "resnet50", "resnet10a")))
    print(result.mean_ap("hard"), result.mean_delay("hard"), result.ops_gops)

and the imperative one underneath it::

    from repro import (
        SystemConfig, build_system, run_on_dataset,
        kitti_like_dataset, evaluate_dataset, HARD, MODERATE,
    )

    dataset = kitti_like_dataset()
    run = run_on_dataset(SystemConfig("catdet", "resnet50", "resnet10a"), dataset)
    result = evaluate_dataset(dataset, run.detections_by_sequence, HARD)
    print(result.mean_ap(), result.mean_delay(0.8), run.mean_ops_gops())
"""

from repro.api import (
    DatasetSpec,
    EvalSpec,
    ExecSpec,
    ExperimentSpec,
    ResultCache,
    Session,
    build_dataset,
    register_dataset_family,
    register_executor,
    register_system,
)
from repro.core import (
    CascadedSystem,
    CaTDetSystem,
    DetectionSystem,
    KeyFrameSystem,
    SingleModelSystem,
    SystemConfig,
    SystemRunResult,
    build_system,
    run_on_dataset,
)
from repro.datasets import (
    Dataset,
    Sequence,
    citypersons_like_dataset,
    kitti_like_dataset,
)
from repro.cluster import (
    FileWorkQueue,
    MultiHostExecutor,
    Worker,
    dispatch_specs,
)
from repro.cost import (
    DEVICE_PROFILES,
    CostModel,
    DeviceProfile,
    register_device,
)
from repro.detections import Detections, DetectionsBuffer
from repro.engine import (
    FrameRef,
    ParallelExecutor,
    SerialExecutor,
)
from repro.engine.stream import sequence_frames
from repro.metrics import (
    EASY,
    HARD,
    MODERATE,
    EvaluationResult,
    evaluate_dataset,
)
from repro.simdet import MODEL_ZOO, get_model
from repro.tracker import CaTDetTracker, Sort, TrackerConfig

__version__ = "1.0.0"

__all__ = [
    "DatasetSpec",
    "EvalSpec",
    "ExecSpec",
    "ExperimentSpec",
    "ResultCache",
    "Session",
    "build_dataset",
    "register_dataset_family",
    "register_executor",
    "register_system",
    "CascadedSystem",
    "CaTDetSystem",
    "DetectionSystem",
    "KeyFrameSystem",
    "SingleModelSystem",
    "SystemConfig",
    "SystemRunResult",
    "build_system",
    "run_on_dataset",
    "Dataset",
    "Sequence",
    "citypersons_like_dataset",
    "kitti_like_dataset",
    "FileWorkQueue",
    "MultiHostExecutor",
    "Worker",
    "dispatch_specs",
    "CostModel",
    "DEVICE_PROFILES",
    "DeviceProfile",
    "register_device",
    "Detections",
    "DetectionsBuffer",
    "FrameRef",
    "ParallelExecutor",
    "SerialExecutor",
    "sequence_frames",
    "EASY",
    "MODERATE",
    "HARD",
    "EvaluationResult",
    "evaluate_dataset",
    "MODEL_ZOO",
    "get_model",
    "CaTDetTracker",
    "Sort",
    "TrackerConfig",
    "__version__",
]
