"""KITTI-like dataset construction and real KITTI tracking-label IO.

The synthetic spec mirrors the KITTI tracking benchmark the paper evaluates
on: 1242x375 at 10 fps, Car and Pedestrian classes (Car needs IoU >= 0.7,
Pedestrian >= 0.5), 21 training sequences totalling ~8k frames.

The label parser/writer speaks the *actual* KITTI tracking text format so a
user with the real dataset can substitute it for the synthetic world.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence as Seq, TextIO, Union

import numpy as np

from repro.datasets.motion_models import TrajectoryConfig
from repro.datasets.synth import (
    ClassPopulation,
    SyntheticWorldConfig,
    generate_dataset,
)
from repro.datasets.types import ClassSpec, Dataset, ObjectTrack, Sequence

KITTI_WIDTH = 1242
KITTI_HEIGHT = 375
KITTI_FPS = 10.0

#: KITTI evaluation: Car requires 70 % overlap, Pedestrian 50 % (§6.1).
KITTI_CLASSES = (
    ClassSpec(name="Car", label=0, min_iou=0.7),
    ClassSpec(name="Pedestrian", label=1, min_iou=0.5),
)

_CAR_TRAJECTORY = TrajectoryConfig(
    width_log_mean=4.2,   # exp(4.2) ~ 67 px wide typical car
    width_log_std=0.75,
    aspect_mean=0.55,     # cars are wide
    aspect_std=0.12,
    speed_std=3.5,
    accel_std=0.45,
    accel_smoothness=0.85,
    growth_coupling=0.015,
)

_PEDESTRIAN_TRAJECTORY = TrajectoryConfig(
    width_log_mean=3.05,  # exp(3.05) ~ 21 px wide typical pedestrian
    width_log_std=0.55,
    aspect_mean=2.3,      # people are tall
    aspect_std=0.3,
    speed_std=1.5,
    accel_std=0.25,
    accel_smoothness=0.85,
    growth_coupling=0.01,
)


def kitti_world_config() -> SyntheticWorldConfig:
    """The synthetic world mirroring KITTI tracking statistics."""
    return SyntheticWorldConfig(
        width=KITTI_WIDTH,
        height=KITTI_HEIGHT,
        fps=KITTI_FPS,
        populations=(
            ClassPopulation(
                spec=KITTI_CLASSES[0],
                trajectory=_CAR_TRAJECTORY,
                initial_count_mean=5.0,
                entry_rate=0.10,
                edge_entry_prob=0.55,
                occlusion_rate=9.0,
                occlusion_duration_mean=8.0,
                occlusion_depth_range=(0.5, 0.95),
                entry_occlusion_prob=0.7,
                entry_occlusion_decay=(8, 24),
            ),
            ClassPopulation(
                spec=KITTI_CLASSES[1],
                trajectory=_PEDESTRIAN_TRAJECTORY,
                initial_count_mean=2.5,
                entry_rate=0.05,
                edge_entry_prob=0.5,
                occlusion_rate=10.0,
                occlusion_duration_mean=8.0,
                occlusion_depth_range=(0.5, 0.95),
                entry_occlusion_prob=0.7,
                entry_occlusion_decay=(8, 24),
            ),
        ),
    )


def kitti_like_dataset(
    *,
    num_sequences: int = 8,
    frames_per_sequence: int = 120,
    seed: int = 2019,
) -> Dataset:
    """Generate the KITTI-like evaluation dataset used across benchmarks.

    Defaults are scaled down from KITTI's 21 sequences x ~380 frames to keep
    experiment runtimes reasonable; pass larger values for a full-size run.
    """
    return generate_dataset(
        kitti_world_config(),
        name="kitti-like",
        num_sequences=num_sequences,
        frames_per_sequence=frames_per_sequence,
        seed=seed,
    )


# --------------------------------------------------------------------- #
# Real KITTI tracking label format
# --------------------------------------------------------------------- #

#: Columns of one KITTI tracking label line (after frame and track id).
_KITTI_FIELDS = (
    "type truncated occluded alpha bbox_left bbox_top bbox_right bbox_bottom "
    "height width length x y z rotation_y"
).split()


def parse_kitti_tracking_labels(
    source: Union[str, Path, TextIO],
    *,
    name: str = "kitti",
    width: int = KITTI_WIDTH,
    height: int = KITTI_HEIGHT,
    num_frames: Optional[int] = None,
    fps: float = KITTI_FPS,
    class_names: Seq[str] = ("Car", "Pedestrian"),
) -> Sequence:
    """Parse a KITTI tracking label file into a :class:`Sequence`.

    Lines look like::

        0 2 Pedestrian 0 0 -2.52 (x1) (y1) (x2) (y2) 1.89 0.48 1.20 ...

    Objects of types outside ``class_names`` (including ``DontCare``) are
    skipped.  Occlusion levels {0,1,2,3} are mapped to fractions
    {0, 0.3, 0.7, 0.9}.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    else:
        lines = source.readlines()

    label_of = {cls_name: idx for idx, cls_name in enumerate(class_names)}
    occ_fraction = {0: 0.0, 1: 0.3, 2: 0.7, 3: 0.9}

    per_track: Dict[int, List[dict]] = defaultdict(list)
    max_frame = -1
    for line_no, line in enumerate(lines, start=1):
        parts = line.split()
        if not parts:
            continue
        if len(parts) < 17:
            raise ValueError(
                f"line {line_no}: expected >= 17 fields, got {len(parts)}"
            )
        frame = int(parts[0])
        track_id = int(parts[1])
        obj_type = parts[2]
        max_frame = max(max_frame, frame)
        if obj_type not in label_of:
            continue
        per_track[track_id].append(
            {
                "frame": frame,
                "label": label_of[obj_type],
                "truncated": float(parts[3]),
                "occluded": occ_fraction.get(int(float(parts[4])), 0.9),
                "box": np.array([float(parts[6]), float(parts[7]), float(parts[8]), float(parts[9])]),
            }
        )

    total_frames = num_frames if num_frames is not None else max_frame + 1
    tracks: List[ObjectTrack] = []
    for track_id, records in sorted(per_track.items()):
        records.sort(key=lambda r: r["frame"])
        # Split on gaps: KITTI tracks can disappear and reappear; each
        # contiguous run becomes its own ObjectTrack (delay is defined per
        # contiguous appearance).
        run: List[dict] = []
        run_counter = 0
        for record in records + [None]:
            if record is not None and (not run or record["frame"] == run[-1]["frame"] + 1):
                run.append(record)
                continue
            if run:
                tracks.append(
                    ObjectTrack(
                        track_id=track_id * 1000 + run_counter,
                        label=run[0]["label"],
                        first_frame=run[0]["frame"],
                        boxes=np.stack([r["box"] for r in run]),
                        occlusion=np.array([r["occluded"] for r in run]),
                        truncation=np.array([r["truncated"] for r in run]),
                    )
                )
                run_counter += 1
            run = [record] if record is not None else []

    return Sequence(
        name=name,
        width=width,
        height=height,
        num_frames=total_frames,
        fps=fps,
        tracks=tracks,
    )


def write_kitti_tracking_labels(
    sequence: Sequence,
    destination: Union[str, Path, TextIO],
    *,
    class_names: Seq[str] = ("Car", "Pedestrian"),
) -> None:
    """Write a :class:`Sequence` in KITTI tracking label format.

    3-D fields (alpha, dimensions, location, rotation) are filled with the
    KITTI "unknown" placeholder values since the synthetic world is 2-D.
    """
    def occ_level(fraction: float) -> int:
        if fraction < 0.15:
            return 0
        if fraction < 0.5:
            return 1
        return 2

    rows: List[str] = []
    for track in sequence.tracks:
        name = class_names[track.label]
        for offset in range(track.length):
            frame = track.first_frame + offset
            b = track.boxes[offset]
            rows.append(
                f"{frame} {track.track_id} {name} "
                f"{track.truncation[offset]:.2f} {occ_level(track.occlusion[offset])} -10 "
                f"{b[0]:.2f} {b[1]:.2f} {b[2]:.2f} {b[3]:.2f} "
                f"-1 -1 -1 -1000 -1000 -1000 -10"
            )
    rows.sort(key=lambda r: (int(r.split()[0]), int(r.split()[1])))
    text = "\n".join(rows) + "\n"
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        destination.write(text)


# --------------------------------------------------------------------- #
# Dataset-family registration
# --------------------------------------------------------------------- #

from repro.api.registry import register_dataset_family  # noqa: E402


@register_dataset_family("kitti")
def _kitti_family(num_sequences=None, frames_per_sequence=None, seed=None):
    """The ``"kitti"`` family of :class:`repro.api.DatasetSpec` (None = default)."""
    kwargs = {}
    if num_sequences is not None:
        kwargs["num_sequences"] = num_sequences
    if frames_per_sequence is not None:
        kwargs["frames_per_sequence"] = frames_per_sequence
    if seed is not None:
        kwargs["seed"] = seed
    return kitti_like_dataset(**kwargs)
