"""Ego-camera motion model.

A moving camera (the KITTI car) imposes a *global* flow on every object in
the image: horizontal pan when turning, a mild zoom as the car drives
forward (objects ahead expand and drift toward the image edges).  The model
is a smooth random process over (pan_x, pan_y, zoom) per frame; applying it
to a box transforms the box about the image's focus-of-expansion point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class EgoMotionConfig:
    """Parameters of the smooth ego-motion process.

    Per-frame pan follows an AR(1) process in pixels/frame; zoom is a
    multiplicative rate near 1 (e.g. 1.004 = objects grow 0.4 %/frame as
    the camera approaches).
    """

    pan_std: float = 2.0
    pan_smoothness: float = 0.9
    zoom_rate_mean: float = 1.004
    zoom_rate_std: float = 0.002
    zoom_smoothness: float = 0.95

    def __post_init__(self) -> None:
        if self.pan_std < 0:
            raise ValueError(f"pan_std must be >= 0, got {self.pan_std}")
        if not (0.0 <= self.pan_smoothness < 1.0):
            raise ValueError(f"pan_smoothness must lie in [0, 1), got {self.pan_smoothness}")
        if not (0.0 <= self.zoom_smoothness < 1.0):
            raise ValueError(f"zoom_smoothness must lie in [0, 1), got {self.zoom_smoothness}")
        if self.zoom_rate_mean <= 0:
            raise ValueError(f"zoom_rate_mean must be positive, got {self.zoom_rate_mean}")


class EgoCamera:
    """Pre-sampled ego-motion for one sequence.

    Parameters
    ----------
    config:
        Ego-motion process parameters.
    num_frames:
        Number of frames to sample.
    width, height:
        Image geometry; the focus of expansion sits at the image center
        horizontally and at 40 % height (roughly the horizon in KITTI).
    seed:
        RNG seed or generator.
    """

    def __init__(
        self,
        config: EgoMotionConfig,
        num_frames: int,
        width: float,
        height: float,
        seed: SeedLike = None,
    ):
        if num_frames <= 0:
            raise ValueError(f"num_frames must be positive, got {num_frames}")
        rng = as_generator(seed)
        self.config = config
        self.width = float(width)
        self.height = float(height)
        self.foe = np.array([self.width / 2.0, self.height * 0.4])

        # AR(1) pan in x and y (y pan much smaller: cameras rarely tilt).
        rho = config.pan_smoothness
        innov_scale = config.pan_std * np.sqrt(max(1.0 - rho**2, 1e-12))
        pan = np.zeros((num_frames, 2))
        state = rng.normal(scale=config.pan_std, size=2) * np.array([1.0, 0.2])
        for t in range(num_frames):
            state = rho * state + rng.normal(scale=innov_scale, size=2) * np.array([1.0, 0.2])
            pan[t] = state
        self.pan = pan

        rho_z = config.zoom_smoothness
        z_innov = config.zoom_rate_std * np.sqrt(max(1.0 - rho_z**2, 1e-12))
        zoom = np.zeros(num_frames)
        z_state = 0.0
        for t in range(num_frames):
            z_state = rho_z * z_state + rng.normal(scale=z_innov)
            zoom[t] = config.zoom_rate_mean + z_state
        self.zoom = np.maximum(zoom, 0.5)

    def transform_box(self, box: np.ndarray, frame: int) -> np.ndarray:
        """Apply frame ``frame``'s ego-motion step to a box.

        Zoom expands the box about the focus of expansion; pan translates.
        """
        box = np.asarray(box, dtype=np.float64).reshape(4)
        z = self.zoom[frame]
        fx, fy = self.foe
        out = box.copy()
        out[0] = fx + (box[0] - fx) * z
        out[2] = fx + (box[2] - fx) * z
        out[1] = fy + (box[1] - fy) * z
        out[3] = fy + (box[3] - fy) * z
        out[0] += self.pan[frame, 0]
        out[2] += self.pan[frame, 0]
        out[1] += self.pan[frame, 1]
        out[3] += self.pan[frame, 1]
        return out

    def flow_at(self, point: np.ndarray, frame: int) -> np.ndarray:
        """Apparent pixel displacement of a static scene point this frame."""
        point = np.asarray(point, dtype=np.float64).reshape(2)
        z = self.zoom[frame]
        moved = self.foe + (point - self.foe) * z + self.pan[frame]
        return moved - point
