"""Synthetic video-world generator.

Produces :class:`~repro.datasets.types.Sequence` objects whose ground-truth
tracks exhibit the temporal/spatial statistics the paper's system exploits:
persistence, smooth motion under a moving camera, object entry/exit, and
occlusion episodes.  Everything is deterministic in the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.camera import EgoCamera, EgoMotionConfig
from repro.datasets.motion_models import (
    TrajectoryConfig,
    generate_trajectory,
    truncation_of,
)
from repro.datasets.types import ClassSpec, Dataset, ObjectTrack, Sequence
from repro.utils.rng import RngFactory


@dataclass(frozen=True)
class ClassPopulation:
    """Spawn statistics for one class.

    Parameters
    ----------
    spec:
        The class identity/evaluation spec.
    trajectory:
        Trajectory statistics for objects of this class.
    initial_count_mean:
        Poisson mean of objects present in frame 0.
    entry_rate:
        Poisson rate of new objects per subsequent frame.
    edge_entry_prob:
        Probability a new object enters at a vertical image border rather
        than appearing in the interior (far away / revealed by occlusion).
    occlusion_rate:
        Poisson rate of occlusion episodes per object per 100 frames.
    occlusion_duration_mean:
        Mean episode length in frames (geometric).
    occlusion_depth_range:
        Min/max peak occluded fraction of an episode.
    entry_occlusion_prob:
        Probability that an interior (non-edge) entry starts occluded —
        the object is being *revealed* from behind another — with the
        occlusion decaying over ``entry_occlusion_decay`` frames.  This is
        a primary source of detection delay.
    entry_occlusion_decay:
        Min/max frames for the entry occlusion to fade.
    """

    spec: ClassSpec
    trajectory: TrajectoryConfig
    initial_count_mean: float = 4.0
    entry_rate: float = 0.08
    edge_entry_prob: float = 0.6
    occlusion_rate: float = 4.0
    occlusion_duration_mean: float = 6.0
    occlusion_depth_range: Tuple[float, float] = (0.3, 0.9)
    entry_occlusion_prob: float = 0.5
    entry_occlusion_decay: Tuple[int, int] = (4, 14)

    def __post_init__(self) -> None:
        if self.initial_count_mean < 0 or self.entry_rate < 0:
            raise ValueError("spawn rates must be >= 0")
        if not (0.0 <= self.edge_entry_prob <= 1.0):
            raise ValueError(
                f"edge_entry_prob must lie in [0, 1], got {self.edge_entry_prob}"
            )
        if not (0.0 <= self.entry_occlusion_prob <= 1.0):
            raise ValueError(
                f"entry_occlusion_prob must lie in [0, 1], got {self.entry_occlusion_prob}"
            )
        lo, hi = self.occlusion_depth_range
        if not (0.0 <= lo <= hi <= 1.0):
            raise ValueError(
                f"occlusion_depth_range must be ordered within [0, 1], got {self.occlusion_depth_range}"
            )


@dataclass(frozen=True)
class SyntheticWorldConfig:
    """Full world description for a dataset."""

    width: int
    height: int
    fps: float
    populations: Tuple[ClassPopulation, ...]
    ego: EgoMotionConfig = EgoMotionConfig()

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"image size must be positive, got {self.width}x{self.height}")
        if self.fps <= 0:
            raise ValueError(f"fps must be positive, got {self.fps}")
        if not self.populations:
            raise ValueError("at least one class population is required")

    @property
    def classes(self) -> Tuple[ClassSpec, ...]:
        return tuple(pop.spec for pop in self.populations)


def _occlusion_profile(
    length: int,
    population: ClassPopulation,
    rng: np.random.Generator,
    *,
    occluded_entry: bool = False,
) -> np.ndarray:
    """Per-frame occluded fraction for one track: a sum of ramped episodes."""
    occ = np.zeros(length)
    if occluded_entry:
        lo_d, hi_d = population.entry_occlusion_decay
        decay = int(rng.integers(lo_d, hi_d + 1))
        depth = rng.uniform(0.65, 0.95)
        span = min(decay, length)
        occ[:span] = depth * (1.0 - np.arange(span) / max(decay, 1))
    rate = population.occlusion_rate * length / 100.0
    n_episodes = rng.poisson(rate)
    lo, hi = population.occlusion_depth_range
    for _ in range(n_episodes):
        start = int(rng.integers(0, max(length, 1)))
        duration = 1 + int(rng.geometric(1.0 / max(population.occlusion_duration_mean, 1.0)))
        depth = rng.uniform(lo, hi)
        end = min(start + duration, length)
        span = end - start
        if span <= 0:
            continue
        # Triangular ramp up/down within the episode.
        t = np.arange(span)
        ramp = 1.0 - np.abs((t - (span - 1) / 2.0) / max((span - 1) / 2.0, 0.5))
        occ[start:end] = np.maximum(occ[start:end], depth * np.clip(ramp, 0.2, 1.0))
    return np.clip(occ, 0.0, 1.0)


def generate_sequence(
    config: SyntheticWorldConfig,
    num_frames: int,
    name: str,
    seed: int,
) -> Sequence:
    """Generate one sequence deterministically from ``seed``."""
    if num_frames <= 0:
        raise ValueError(f"num_frames must be positive, got {num_frames}")
    factory = RngFactory(seed)
    camera = EgoCamera(
        config.ego, num_frames, config.width, config.height, factory.child("camera")
    )

    tracks: List[ObjectTrack] = []
    track_id = 0
    for pop_idx, population in enumerate(config.populations):
        spawn_rng = factory.child("spawn", pop_idx)
        # Frame-0 population plus Poisson arrivals afterwards.
        entries: List[Tuple[int, bool]] = [
            (0, False) for _ in range(spawn_rng.poisson(population.initial_count_mean))
        ]
        for frame in range(1, num_frames):
            for _ in range(spawn_rng.poisson(population.entry_rate)):
                at_edge = spawn_rng.random() < population.edge_entry_prob
                entries.append((frame, at_edge))

        for entry_idx, (start_frame, at_edge) in enumerate(entries):
            traj_rng = factory.child("traj", pop_idx, entry_idx)
            boxes = generate_trajectory(
                population.trajectory,
                start_frame,
                num_frames,
                config.width,
                config.height,
                camera,
                traj_rng,
                at_edge=at_edge,
                initial=(start_frame == 0),
            )
            if boxes.shape[0] < 2:
                continue  # degenerate blip, not a real object
            occ_rng = factory.child("occ", pop_idx, entry_idx)
            occluded_entry = (
                start_frame > 0
                and not at_edge
                and occ_rng.random() < population.entry_occlusion_prob
            )
            occlusion = _occlusion_profile(
                boxes.shape[0], population, occ_rng, occluded_entry=occluded_entry
            )
            truncation = np.array(
                [truncation_of(b, config.width, config.height) for b in boxes]
            )
            tracks.append(
                ObjectTrack(
                    track_id=track_id,
                    label=population.spec.label,
                    first_frame=start_frame,
                    boxes=boxes,
                    occlusion=occlusion,
                    truncation=truncation,
                )
            )
            track_id += 1

    return Sequence(
        name=name,
        width=config.width,
        height=config.height,
        num_frames=num_frames,
        fps=config.fps,
        tracks=tracks,
    )


def generate_dataset(
    config: SyntheticWorldConfig,
    *,
    name: str,
    num_sequences: int,
    frames_per_sequence: int,
    seed: int,
    labeled_frames: Optional[Dict[str, List[int]]] = None,
) -> Dataset:
    """Generate a dataset of independent sequences.

    Each sequence gets an independent child seed, so the dataset content for
    sequence ``i`` is invariant to ``num_sequences``.
    """
    if num_sequences <= 0:
        raise ValueError(f"num_sequences must be positive, got {num_sequences}")
    factory = RngFactory(seed)
    sequences = [
        generate_sequence(
            config,
            frames_per_sequence,
            name=f"{name}-{i:04d}",
            seed=factory.child_seed("sequence", i),
        )
        for i in range(num_sequences)
    ]
    return Dataset(
        name=name,
        classes=config.classes,
        sequences=sequences,
        labeled_frames=labeled_frames,
    )
