"""Object trajectory generation.

Each object gets an image-space trajectory composed of:

* an initial position and size drawn from class-specific distributions,
* a smooth proper-motion velocity (AR(1) acceleration noise),
* the sequence's shared ego-camera transform,
* a size trend coupled to vertical position (objects lower in the image are
  closer, hence larger — the dominant KITTI geometry cue).

Trajectories run until the object leaves the (padded) image or the sequence
ends; occlusion windows are overlaid afterwards by the world generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.datasets.camera import EgoCamera
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class TrajectoryConfig:
    """Class-specific trajectory statistics.

    Parameters
    ----------
    width_log_mean, width_log_std:
        Log-normal initial box-width distribution (pixels).
    aspect_mean, aspect_std:
        Height/width ratio distribution (Car ~0.55, Pedestrian ~2.3).
    speed_std:
        Proper-motion speed scale, pixels/frame.
    accel_std:
        Acceleration innovation scale, pixels/frame^2.
    accel_smoothness:
        AR(1) coefficient of the velocity process.
    growth_coupling:
        How strongly the apparent size follows vertical motion toward the
        camera (0 disables).
    """

    width_log_mean: float = 4.0
    width_log_std: float = 0.7
    aspect_mean: float = 0.6
    aspect_std: float = 0.1
    speed_std: float = 3.0
    accel_std: float = 0.4
    accel_smoothness: float = 0.85
    growth_coupling: float = 0.015

    def __post_init__(self) -> None:
        if self.width_log_std < 0 or self.aspect_std < 0:
            raise ValueError("spread parameters must be >= 0")
        if self.aspect_mean <= 0:
            raise ValueError(f"aspect_mean must be positive, got {self.aspect_mean}")
        if not (0.0 <= self.accel_smoothness < 1.0):
            raise ValueError(
                f"accel_smoothness must lie in [0, 1), got {self.accel_smoothness}"
            )


def sample_initial_box(
    config: TrajectoryConfig,
    width: float,
    height: float,
    rng: np.random.Generator,
    *,
    at_edge: bool = False,
    initial: bool = False,
) -> np.ndarray:
    """Sample an object's initial box.

    Three entry modes, which drive the delay metric:

    * ``initial=True`` — part of the frame-0 standing population: full size
      distribution, fully visible (these objects have near-zero delay for a
      good detector).
    * ``at_edge=True`` — the object enters through a vertical image border:
      its center starts *on* the border, so it begins roughly half
      truncated and becomes detectable as it slides in.
    * interior entry (both false) — the object appears far away: its width
      is drawn from a distribution shifted ~2.3x smaller, near the horizon
      band, and grows as it approaches (see ``generate_trajectory``).
    """
    log_mean = config.width_log_mean
    if not initial and not at_edge:
        log_mean -= 0.85  # distant appearance: ~2.3x smaller than standing pop.
    w = float(np.exp(rng.normal(log_mean, config.width_log_std)))
    w = float(np.clip(w, 8.0, width * 0.6))
    aspect = max(0.2, rng.normal(config.aspect_mean, config.aspect_std))
    h = min(w * aspect, height * 0.95)

    horizon = height * 0.45
    if at_edge:
        side = rng.integers(0, 2)
        # Center slightly outside the border: the object enters ~65 % truncated.
        cx = -0.15 * w if side == 0 else float(width) + 0.15 * w
        cy = rng.uniform(horizon, min(height - h / 2.0, height * 0.9))
    else:
        cx = rng.uniform(width * 0.1, width * 0.9)
        # Smaller objects sit nearer the horizon (farther away).
        size_frac = np.clip(w / (width * 0.3), 0.0, 1.0)
        cy_lo = horizon
        cy_hi = horizon + (height * 0.45) * (0.15 + 0.85 * size_frac)
        cy = rng.uniform(cy_lo, max(cy_hi, cy_lo + 1.0))
    return np.array([cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0])


def generate_trajectory(
    config: TrajectoryConfig,
    start_frame: int,
    num_frames: int,
    width: float,
    height: float,
    camera: Optional[EgoCamera] = None,
    seed: SeedLike = None,
    *,
    at_edge: bool = False,
    initial: bool = False,
    min_visible_fraction: float = 0.2,
    max_length: Optional[int] = None,
) -> np.ndarray:
    """Generate one object's boxes from ``start_frame`` until exit.

    Returns an ``(T, 4)`` array of *unclipped* boxes; the trajectory stops
    when less than ``min_visible_fraction`` of the box remains inside the
    image (the object has left the frame) or the sequence ends.
    """
    if not (0 <= start_frame < num_frames):
        raise ValueError(f"start_frame {start_frame} out of range [0, {num_frames})")
    rng = as_generator(seed)
    box = sample_initial_box(config, width, height, rng, at_edge=at_edge, initial=initial)

    vel = rng.normal(scale=config.speed_std, size=2) * np.array([1.0, 0.25])
    if at_edge:
        # Edge entries move inward, briskly enough to clear the border.
        center_x = (box[0] + box[2]) / 2.0
        inward = 1.0 if center_x < width / 2.0 else -1.0
        vel[0] = inward * max(abs(vel[0]), 0.8 * config.speed_std)
    # Interior (distant) entries approach the camera: sizes grow a few
    # percent per frame, tapering off once the object is large.
    approach_rate = 0.0
    if not initial and not at_edge:
        approach_rate = float(rng.uniform(0.008, 0.03))

    rho = config.accel_smoothness
    innov = config.accel_std * np.sqrt(max(1.0 - rho**2, 1e-12))

    boxes: List[np.ndarray] = []
    limit = num_frames - start_frame if max_length is None else min(max_length, num_frames - start_frame)
    for t in range(limit):
        boxes.append(box.copy())
        frame = start_frame + t
        # Ego-camera moves everything.
        if camera is not None:
            box = camera.transform_box(box, frame)
        # Proper motion.
        vel = rho * vel + rng.normal(scale=innov, size=2) * np.array([1.0, 0.25])
        box[0] += vel[0]
        box[2] += vel[0]
        box[1] += vel[1]
        box[3] += vel[1]
        # Size trend: approach growth (tapering once large) plus coupling to
        # downward (toward-camera) motion.
        growth = 1.0
        if approach_rate:
            cur_w = box[2] - box[0]
            taper = float(np.clip(1.0 - cur_w / (width * 0.25), 0.0, 1.0))
            growth *= 1.0 + approach_rate * taper
        if config.growth_coupling:
            growth *= 1.0 + config.growth_coupling * np.tanh(vel[1])
        if growth != 1.0:
            cx = (box[0] + box[2]) / 2.0
            cy = (box[1] + box[3]) / 2.0
            half_w = (box[2] - box[0]) / 2.0 * growth
            half_h = (box[3] - box[1]) / 2.0 * growth
            box = np.array([cx - half_w, cy - half_h, cx + half_w, cy + half_h])

        if _visible_fraction(box, width, height) < min_visible_fraction:
            break
        if (box[2] - box[0]) < 4.0 or (box[3] - box[1]) < 4.0:
            break  # shrunk to nothing (receded into the distance)
    return np.stack(boxes) if boxes else np.zeros((0, 4))


def _visible_fraction(box: np.ndarray, width: float, height: float) -> float:
    """Fraction of box area inside the image."""
    w_full = max(box[2] - box[0], 1e-9)
    h_full = max(box[3] - box[1], 1e-9)
    w_vis = max(0.0, min(box[2], width) - max(box[0], 0.0))
    h_vis = max(0.0, min(box[3], height) - max(box[1], 0.0))
    return (w_vis * h_vis) / (w_full * h_full)


def truncation_of(box: np.ndarray, width: float, height: float) -> float:
    """KITTI-style truncation: fraction of the box outside the image."""
    return 1.0 - _visible_fraction(np.asarray(box, dtype=np.float64).reshape(4), width, height)
