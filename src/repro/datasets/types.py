"""Ground-truth data model: tracks, frames, sequences, datasets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence as Seq, Tuple

import numpy as np

from repro.boxes.box import clip_boxes


@dataclass(frozen=True)
class ClassSpec:
    """One object class in a dataset.

    Attributes
    ----------
    name:
        Human-readable class name (``"Car"``, ``"Pedestrian"``, ...).
    label:
        Integer index used throughout the library.
    min_iou:
        IoU required for a detection of this class to count as correct
        (KITTI: 0.7 for Car, 0.5 for Pedestrian).
    """

    name: str
    label: int
    min_iou: float = 0.5

    def __post_init__(self) -> None:
        if not (0.0 < self.min_iou <= 1.0):
            raise ValueError(f"min_iou must lie in (0, 1], got {self.min_iou}")


@dataclass
class ObjectTrack:
    """One ground-truth object across its visible lifetime.

    Boxes are stored *unclipped* (they may extend past the image border);
    per-frame truncation is the fraction of box area outside the image and
    occlusion is a simulated occluded-area fraction in [0, 1].

    Attributes
    ----------
    track_id:
        Sequence-unique id.
    label:
        Class index.
    first_frame:
        Index of the first frame in which the object appears.
    boxes : (T, 4) array
        One box per visible frame, starting at ``first_frame``.
    occlusion : (T,) array
        Occluded fraction per frame.
    truncation : (T,) array
        Out-of-image fraction per frame.
    """

    track_id: int
    label: int
    first_frame: int
    boxes: np.ndarray
    occlusion: np.ndarray
    truncation: np.ndarray

    def __post_init__(self) -> None:
        self.boxes = np.asarray(self.boxes, dtype=np.float64).reshape(-1, 4)
        self.occlusion = np.asarray(self.occlusion, dtype=np.float64).reshape(-1)
        self.truncation = np.asarray(self.truncation, dtype=np.float64).reshape(-1)
        t = self.boxes.shape[0]
        if self.occlusion.shape[0] != t or self.truncation.shape[0] != t:
            raise ValueError(
                "boxes, occlusion and truncation must have equal length, got "
                f"{t}, {self.occlusion.shape[0]}, {self.truncation.shape[0]}"
            )
        if self.first_frame < 0:
            raise ValueError(f"first_frame must be >= 0, got {self.first_frame}")

    @property
    def length(self) -> int:
        """Number of frames the object is visible."""
        return self.boxes.shape[0]

    @property
    def last_frame(self) -> int:
        """Index of the final visible frame (inclusive)."""
        return self.first_frame + self.length - 1

    def frame_index(self, frame: int) -> Optional[int]:
        """Index into the per-frame arrays for ``frame``, or None if absent."""
        offset = frame - self.first_frame
        if 0 <= offset < self.length:
            return offset
        return None

    def box_at(self, frame: int) -> Optional[np.ndarray]:
        """The object's box in ``frame`` (or None when not visible)."""
        idx = self.frame_index(frame)
        return None if idx is None else self.boxes[idx]


@dataclass
class FrameAnnotations:
    """All ground-truth objects visible in one frame (parallel arrays)."""

    frame: int
    boxes: np.ndarray
    labels: np.ndarray
    track_ids: np.ndarray
    occlusion: np.ndarray
    truncation: np.ndarray

    def __post_init__(self) -> None:
        self.boxes = np.asarray(self.boxes, dtype=np.float64).reshape(-1, 4)
        self.labels = np.asarray(self.labels, dtype=np.int64).reshape(-1)
        self.track_ids = np.asarray(self.track_ids, dtype=np.int64).reshape(-1)
        self.occlusion = np.asarray(self.occlusion, dtype=np.float64).reshape(-1)
        self.truncation = np.asarray(self.truncation, dtype=np.float64).reshape(-1)
        n = self.boxes.shape[0]
        for name, arr in (
            ("labels", self.labels),
            ("track_ids", self.track_ids),
            ("occlusion", self.occlusion),
            ("truncation", self.truncation),
        ):
            if arr.shape[0] != n:
                raise ValueError(f"{name} length {arr.shape[0]} != boxes length {n}")

    def __len__(self) -> int:
        return self.boxes.shape[0]


@dataclass
class Sequence:
    """One video sequence: image geometry, frame count and the track set."""

    name: str
    width: int
    height: int
    num_frames: int
    fps: float
    tracks: List[ObjectTrack] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"image size must be positive, got {self.width}x{self.height}")
        if self.num_frames <= 0:
            raise ValueError(f"num_frames must be positive, got {self.num_frames}")
        if self.fps <= 0:
            raise ValueError(f"fps must be positive, got {self.fps}")
        for track in self.tracks:
            if track.last_frame >= self.num_frames:
                raise ValueError(
                    f"track {track.track_id} extends to frame {track.last_frame}, "
                    f"sequence has {self.num_frames} frames"
                )

    @property
    def image_size(self) -> Tuple[int, int]:
        """``(width, height)``."""
        return self.width, self.height

    def annotations(self, frame: int, *, clip: bool = True) -> FrameAnnotations:
        """Ground truth for one frame (boxes clipped to the image by default)."""
        if not (0 <= frame < self.num_frames):
            raise IndexError(f"frame {frame} out of range [0, {self.num_frames})")
        boxes, labels, track_ids, occ, trunc = [], [], [], [], []
        for track in self.tracks:
            idx = track.frame_index(frame)
            if idx is None:
                continue
            boxes.append(track.boxes[idx])
            labels.append(track.label)
            track_ids.append(track.track_id)
            occ.append(track.occlusion[idx])
            trunc.append(track.truncation[idx])
        box_arr = np.stack(boxes) if boxes else np.zeros((0, 4))
        if clip and box_arr.shape[0]:
            box_arr = clip_boxes(box_arr, self.width, self.height)
        return FrameAnnotations(
            frame=frame,
            boxes=box_arr,
            labels=np.array(labels, dtype=np.int64),
            track_ids=np.array(track_ids, dtype=np.int64),
            occlusion=np.array(occ),
            truncation=np.array(trunc),
        )

    def iter_annotations(self, *, clip: bool = True) -> Iterator[FrameAnnotations]:
        """Yield annotations for every frame in order."""
        for frame in range(self.num_frames):
            yield self.annotations(frame, clip=clip)

    @property
    def num_objects(self) -> int:
        return len(self.tracks)


@dataclass
class Dataset:
    """A set of sequences plus the class table.

    ``labeled_frames`` optionally restricts *evaluation* to a subset of
    frames per sequence (CityPersons labels only the 20th frame of every
    30-frame snippet); detection always runs on all frames.
    """

    name: str
    classes: Tuple[ClassSpec, ...]
    sequences: List[Sequence] = field(default_factory=list)
    labeled_frames: Optional[Dict[str, List[int]]] = None

    def __post_init__(self) -> None:
        labels = [c.label for c in self.classes]
        if len(set(labels)) != len(labels):
            raise ValueError("class labels must be unique")

    @property
    def class_names(self) -> List[str]:
        return [c.name for c in self.classes]

    @property
    def class_labels(self) -> List[int]:
        return [c.label for c in self.classes]

    def class_spec(self, label: int) -> ClassSpec:
        """Look up a class by integer label."""
        for spec in self.classes:
            if spec.label == label:
                return spec
        raise KeyError(f"no class with label {label}")

    def evaluation_frames(self, sequence: Sequence) -> List[int]:
        """Frames of ``sequence`` that carry evaluation labels."""
        if self.labeled_frames is None:
            return list(range(sequence.num_frames))
        return list(self.labeled_frames.get(sequence.name, []))

    @property
    def total_frames(self) -> int:
        return sum(seq.num_frames for seq in self.sequences)

    @property
    def total_objects(self) -> int:
        return sum(seq.num_objects for seq in self.sequences)
