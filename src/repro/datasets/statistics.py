"""Dataset statistics: the quantities that drive detection difficulty.

Used to sanity-check that a synthetic world matches its target benchmark's
character (object counts, size distributions, occlusion/truncation rates,
track lengths, entry modes) and to document datasets in experiment logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.datasets.types import Dataset, Sequence


@dataclass(frozen=True)
class ClassStatistics:
    """Instance-level statistics for one class."""

    name: str
    num_instances: int
    num_tracks: int
    width_percentiles: Tuple[float, float, float]   # p25, p50, p75
    height_percentiles: Tuple[float, float, float]
    occluded_fraction: float        # instances with occlusion > 0.1
    heavily_occluded_fraction: float  # instances with occlusion > 0.5
    truncated_fraction: float       # instances with truncation > 0.1
    mean_track_length: float


@dataclass(frozen=True)
class DatasetStatistics:
    """Aggregate statistics of a dataset."""

    name: str
    num_sequences: int
    num_frames: int
    num_tracks: int
    num_instances: int
    instances_per_frame: float
    entries_after_start: int        # tracks appearing after frame 0
    per_class: Tuple[ClassStatistics, ...]

    def class_stats(self, name: str) -> ClassStatistics:
        for cs in self.per_class:
            if cs.name == name:
                return cs
        raise KeyError(f"no class named {name!r}")

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"dataset {self.name}: {self.num_sequences} sequences, "
            f"{self.num_frames} frames, {self.num_tracks} tracks, "
            f"{self.num_instances} instances "
            f"({self.instances_per_frame:.1f}/frame), "
            f"{self.entries_after_start} mid-sequence entries"
        ]
        for cs in self.per_class:
            w25, w50, w75 = cs.width_percentiles
            lines.append(
                f"  {cs.name}: {cs.num_instances} instances in "
                f"{cs.num_tracks} tracks (len {cs.mean_track_length:.0f}); "
                f"width p25/50/75 = {w25:.0f}/{w50:.0f}/{w75:.0f} px; "
                f"occluded {cs.occluded_fraction:.0%} "
                f"(heavy {cs.heavily_occluded_fraction:.0%}), "
                f"truncated {cs.truncated_fraction:.0%}"
            )
        return "\n".join(lines)


def compute_statistics(dataset: Dataset) -> DatasetStatistics:
    """Walk every annotated frame of ``dataset`` and aggregate statistics."""
    per_class_rows: Dict[int, Dict[str, List[float]]] = {
        spec.label: {"w": [], "h": [], "occ": [], "trunc": []}
        for spec in dataset.classes
    }
    per_class_tracks: Dict[int, List[int]] = {spec.label: [] for spec in dataset.classes}

    num_instances = 0
    num_tracks = 0
    entries_after_start = 0
    for sequence in dataset.sequences:
        for track in sequence.tracks:
            num_tracks += 1
            if track.first_frame > 0:
                entries_after_start += 1
            per_class_tracks[track.label].append(track.length)
        for annotations in sequence.iter_annotations():
            num_instances += len(annotations)
            for label, rows in per_class_rows.items():
                mask = annotations.labels == label
                if not mask.any():
                    continue
                boxes = annotations.boxes[mask]
                rows["w"].extend((boxes[:, 2] - boxes[:, 0]).tolist())
                rows["h"].extend((boxes[:, 3] - boxes[:, 1]).tolist())
                rows["occ"].extend(annotations.occlusion[mask].tolist())
                rows["trunc"].extend(annotations.truncation[mask].tolist())

    per_class: List[ClassStatistics] = []
    for spec in dataset.classes:
        rows = per_class_rows[spec.label]
        widths = np.asarray(rows["w"]) if rows["w"] else np.zeros(1)
        heights = np.asarray(rows["h"]) if rows["h"] else np.zeros(1)
        occ = np.asarray(rows["occ"]) if rows["occ"] else np.zeros(1)
        trunc = np.asarray(rows["trunc"]) if rows["trunc"] else np.zeros(1)
        lengths = per_class_tracks[spec.label]
        per_class.append(
            ClassStatistics(
                name=spec.name,
                num_instances=len(rows["w"]),
                num_tracks=len(lengths),
                width_percentiles=tuple(np.percentile(widths, [25, 50, 75])),
                height_percentiles=tuple(np.percentile(heights, [25, 50, 75])),
                occluded_fraction=float((occ > 0.1).mean()),
                heavily_occluded_fraction=float((occ > 0.5).mean()),
                truncated_fraction=float((trunc > 0.1).mean()),
                mean_track_length=float(np.mean(lengths)) if lengths else 0.0,
            )
        )

    total_frames = dataset.total_frames
    return DatasetStatistics(
        name=dataset.name,
        num_sequences=len(dataset.sequences),
        num_frames=total_frames,
        num_tracks=num_tracks,
        num_instances=num_instances,
        instances_per_frame=num_instances / max(total_frames, 1),
        entries_after_start=entries_after_start,
        per_class=tuple(per_class),
    )
