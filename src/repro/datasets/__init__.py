"""Video datasets: synthetic world generation plus KITTI-format IO.

The synthetic generator produces ground-truth object *tracks* with the
temporal statistics that drive the paper's measurements: objects persist
across frames, move smoothly under ego-camera motion, enter/exit the frame,
and carry occlusion/truncation attributes that make them harder to detect.
"""

from repro.datasets.types import (
    ClassSpec,
    Dataset,
    FrameAnnotations,
    ObjectTrack,
    Sequence,
)
from repro.datasets.camera import EgoCamera, EgoMotionConfig
from repro.datasets.motion_models import TrajectoryConfig, generate_trajectory
from repro.datasets.synth import SyntheticWorldConfig, generate_sequence, generate_dataset
from repro.datasets.kitti import (
    KITTI_CLASSES,
    kitti_like_dataset,
    parse_kitti_tracking_labels,
    write_kitti_tracking_labels,
)
from repro.datasets.citypersons import (
    CITYPERSONS_CLASSES,
    citypersons_like_dataset,
)
from repro.datasets.statistics import (
    ClassStatistics,
    DatasetStatistics,
    compute_statistics,
)

__all__ = [
    "ClassSpec",
    "Dataset",
    "FrameAnnotations",
    "ObjectTrack",
    "Sequence",
    "EgoCamera",
    "EgoMotionConfig",
    "TrajectoryConfig",
    "generate_trajectory",
    "SyntheticWorldConfig",
    "generate_sequence",
    "generate_dataset",
    "KITTI_CLASSES",
    "kitti_like_dataset",
    "parse_kitti_tracking_labels",
    "write_kitti_tracking_labels",
    "CITYPERSONS_CLASSES",
    "citypersons_like_dataset",
    "ClassStatistics",
    "DatasetStatistics",
    "compute_statistics",
]
