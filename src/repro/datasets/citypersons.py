"""CityPersons-like dataset (paper §7).

CityPersons annotates only the Person class, on 2048x1024 images at 30 fps,
in 30-frame sequences where only the 20th frame carries labels.  The
detection system runs on the *full* sequence but evaluation uses the labeled
frames alone, so delay cannot be measured — only mAP (paper §7.1).

The pedestrians are markedly harder than KITTI's (smaller relative to the
image, denser, more occlusion), which is what makes the plain cascade lose
>5 % mAP there while CaTDet recovers most of it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.datasets.motion_models import TrajectoryConfig
from repro.datasets.synth import (
    ClassPopulation,
    SyntheticWorldConfig,
    generate_dataset,
)
from repro.datasets.types import ClassSpec, Dataset

CITYPERSONS_WIDTH = 2048
CITYPERSONS_HEIGHT = 1024
CITYPERSONS_FPS = 30.0
CITYPERSONS_SEQUENCE_LENGTH = 30
#: Index (0-based) of the labeled frame in each 30-frame snippet: "the 20th
#: frame of every sequence is labelled".
CITYPERSONS_LABELED_FRAME = 19

CITYPERSONS_CLASSES = (ClassSpec(name="Person", label=0, min_iou=0.5),)

_PERSON_TRAJECTORY = TrajectoryConfig(
    width_log_mean=3.4,   # exp(3.4) ~ 30 px wide — small relative to 2048 px
    width_log_std=0.6,
    aspect_mean=2.4,
    aspect_std=0.35,
    speed_std=2.5,        # 30 fps but higher resolution: similar px/frame
    accel_std=0.35,
    accel_smoothness=0.85,
    growth_coupling=0.01,
)


def citypersons_world_config() -> SyntheticWorldConfig:
    """Synthetic world mirroring CityPersons statistics."""
    return SyntheticWorldConfig(
        width=CITYPERSONS_WIDTH,
        height=CITYPERSONS_HEIGHT,
        fps=CITYPERSONS_FPS,
        populations=(
            ClassPopulation(
                spec=CITYPERSONS_CLASSES[0],
                trajectory=_PERSON_TRAJECTORY,
                initial_count_mean=7.0,
                entry_rate=0.12,
                edge_entry_prob=0.5,
                occlusion_rate=8.0,       # urban crowds: frequent occlusion
                occlusion_duration_mean=8.0,
                occlusion_depth_range=(0.4, 0.95),
            ),
        ),
    )


def citypersons_like_dataset(
    *,
    num_sequences: int = 24,
    seed: int = 2017,
) -> Dataset:
    """Generate the CityPersons-like dataset: 30-frame snippets, sparse labels."""
    config = citypersons_world_config()
    dataset = generate_dataset(
        config,
        name="citypersons-like",
        num_sequences=num_sequences,
        frames_per_sequence=CITYPERSONS_SEQUENCE_LENGTH,
        seed=seed,
    )
    labeled: Dict[str, List[int]] = {
        seq.name: [CITYPERSONS_LABELED_FRAME] for seq in dataset.sequences
    }
    dataset.labeled_frames = labeled
    return dataset


# --------------------------------------------------------------------- #
# Dataset-family registration
# --------------------------------------------------------------------- #

from repro.api.registry import register_dataset_family  # noqa: E402


@register_dataset_family("citypersons")
def _citypersons_family(num_sequences=None, frames_per_sequence=None, seed=None):
    """The ``"citypersons"`` dataset family (30-frame snippets, sparse labels).

    ``frames_per_sequence`` is fixed by the benchmark protocol (every
    snippet is 30 frames with one labeled frame) and must be left unset.
    """
    if frames_per_sequence is not None and frames_per_sequence != CITYPERSONS_SEQUENCE_LENGTH:
        raise ValueError(
            "citypersons snippets are fixed at "
            f"{CITYPERSONS_SEQUENCE_LENGTH} frames, got {frames_per_sequence}"
        )
    kwargs = {}
    if num_sequences is not None:
        kwargs["num_sequences"] = num_sequences
    if seed is not None:
        kwargs["seed"] = seed
    return citypersons_like_dataset(**kwargs)
