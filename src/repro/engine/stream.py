"""Strictly-causal incremental execution: one frame in, one result out.

``process_sequence`` assumes the whole sequence is available up front.
Live scenarios (a camera feed, a video socket) deliver frames one at a
time and want a detection result *per frame*, with tracker state carried
across calls.  :class:`FrameStream` wraps a :class:`StagePipeline` in that
contract; :func:`repro.core.systems.DetectionSystem.stream` builds on it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from repro.core.results import FrameResult
from repro.datasets.types import Sequence
from repro.engine.stages import StagePipeline


@dataclass(frozen=True)
class FrameRef:
    """One frame of one sequence, as delivered by a frame source."""

    sequence: Sequence
    frame: int


FrameSource = Union[Sequence, Iterable["FrameRef"]]


def sequence_frames(
    sequence: Sequence, start: int = 0, stop: Optional[int] = None
) -> Iterator[FrameRef]:
    """Frame refs for ``sequence[start:stop]`` in causal order."""
    stop = sequence.num_frames if stop is None else min(stop, sequence.num_frames)
    for frame in range(start, stop):
        yield FrameRef(sequence, frame)


def iter_frame_refs(source: FrameSource) -> Iterator[FrameRef]:
    """Normalize a frame source into :class:`FrameRef` values.

    Accepts a whole :class:`Sequence` (all frames in order), an iterable of
    :class:`FrameRef`, or an iterable of ``(sequence, frame)`` pairs.
    """
    if isinstance(source, Sequence):
        yield from sequence_frames(source)
        return
    for item in source:
        if isinstance(item, FrameRef):
            yield item
        else:
            sequence, frame = item
            yield FrameRef(sequence, int(frame))


class FrameStream:
    """Incremental frame-at-a-time runner over a stage pipeline.

    State (most importantly the tracker) persists between :meth:`feed`
    calls for the same sequence; feeding a frame of a *different* sequence
    re-initializes the pipeline for it.  Frames must arrive in causal
    order — the stream never reorders or looks ahead.
    """

    def __init__(self, pipeline: StagePipeline):
        self.pipeline = pipeline
        self._current: Optional[Sequence] = None

    @property
    def current_sequence(self) -> Optional[str]:
        """Name of the sequence currently being streamed (if any)."""
        return self._current.name if self._current is not None else None

    def feed(self, sequence: Sequence, frame: int) -> FrameResult:
        """Process one frame and return its result immediately.

        Sequences are compared by object identity: a *different* sequence
        object — even one reusing a previous name — starts fresh rather
        than inheriting the previous sequence's tracker state.
        """
        if sequence is not self._current:
            self.pipeline.begin_sequence(sequence)
            self._current = sequence
        return self.pipeline.run_frame(sequence, frame)

    def run(self, source: FrameSource) -> Iterator[FrameResult]:
        """Yield one :class:`FrameResult` per frame of ``source``."""
        for ref in iter_frame_refs(source):
            yield self.feed(ref.sequence, ref.frame)

    def reset(self) -> None:
        """Drop all cross-frame state (tracker included)."""
        self.pipeline.reset()
        self._current = None


class StreamRouter:
    """Multi-stream frontend: interleaved frames, isolated per-stream state.

    A single :class:`FrameStream` re-initializes whenever the fed
    sequence changes, so interleaving two live feeds through it corrupts
    (well — constantly restarts) the tracker of both.  The router keeps
    one :class:`FrameStream` per *sequence object*, each wrapping its own
    pipeline from ``pipeline_factory``, so frames of several sequences
    may arrive in any interleaving and every sequence sees exactly the
    causal frame order it would have seen streamed alone.  Within one
    sequence, frames must still arrive in causal order.

    Pipelines created by one factory share the system's simulated
    detectors; that is safe because detector caches are deterministic
    per-sequence values guarded against name collisions (see
    :meth:`repro.simdet.detector.SimulatedDetector.reset`), while the
    stateful tracker stage is instantiated fresh per pipeline.

    ``max_streams`` bounds retained state: the least-recently-fed
    sequence beyond the cap is evicted, and feeding it again later starts
    it fresh — exactly the semantics every sequence switch had before
    routing existed.
    """

    def __init__(self, pipeline_factory, max_streams: int = 32):
        if max_streams < 1:
            raise ValueError(f"max_streams must be >= 1, got {max_streams}")
        self._factory = pipeline_factory
        self._max_streams = int(max_streams)
        # id(sequence) -> (sequence, stream); the strong sequence ref both
        # guards against id() reuse and keeps feed() O(1).
        self._streams: "OrderedDict[int, tuple]" = OrderedDict()

    @property
    def active_streams(self) -> int:
        """How many sequences currently hold live streaming state."""
        return len(self._streams)

    def feed(self, sequence: Sequence, frame: int) -> FrameResult:
        """Process one frame of one (possibly interleaved) sequence."""
        key = id(sequence)
        entry = self._streams.get(key)
        if entry is None:
            while len(self._streams) >= self._max_streams:
                self._streams.popitem(last=False)
            entry = (sequence, FrameStream(self._factory()))
            self._streams[key] = entry
        else:
            self._streams.move_to_end(key)
        return entry[1].feed(sequence, frame)

    def run(self, source: FrameSource) -> Iterator[FrameResult]:
        """Yield one :class:`FrameResult` per frame of ``source``."""
        for ref in iter_frame_refs(source):
            yield self.feed(ref.sequence, ref.frame)

    def reset(self) -> None:
        """Drop every stream's state."""
        for _, stream in self._streams.values():
            stream.reset()
        self._streams.clear()
