"""Strictly-causal incremental execution: one frame in, one result out.

``process_sequence`` assumes the whole sequence is available up front.
Live scenarios (a camera feed, a video socket) deliver frames one at a
time and want a detection result *per frame*, with tracker state carried
across calls.  :class:`FrameStream` wraps a :class:`StagePipeline` in that
contract; :func:`repro.core.systems.DetectionSystem.stream` builds on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from repro.core.results import FrameResult
from repro.datasets.types import Sequence
from repro.engine.stages import StagePipeline


@dataclass(frozen=True)
class FrameRef:
    """One frame of one sequence, as delivered by a frame source."""

    sequence: Sequence
    frame: int


FrameSource = Union[Sequence, Iterable["FrameRef"]]


def sequence_frames(
    sequence: Sequence, start: int = 0, stop: Optional[int] = None
) -> Iterator[FrameRef]:
    """Frame refs for ``sequence[start:stop]`` in causal order."""
    stop = sequence.num_frames if stop is None else min(stop, sequence.num_frames)
    for frame in range(start, stop):
        yield FrameRef(sequence, frame)


def iter_frame_refs(source: FrameSource) -> Iterator[FrameRef]:
    """Normalize a frame source into :class:`FrameRef` values.

    Accepts a whole :class:`Sequence` (all frames in order), an iterable of
    :class:`FrameRef`, or an iterable of ``(sequence, frame)`` pairs.
    """
    if isinstance(source, Sequence):
        yield from sequence_frames(source)
        return
    for item in source:
        if isinstance(item, FrameRef):
            yield item
        else:
            sequence, frame = item
            yield FrameRef(sequence, int(frame))


class FrameStream:
    """Incremental frame-at-a-time runner over a stage pipeline.

    State (most importantly the tracker) persists between :meth:`feed`
    calls for the same sequence; feeding a frame of a *different* sequence
    re-initializes the pipeline for it.  Frames must arrive in causal
    order — the stream never reorders or looks ahead.
    """

    def __init__(self, pipeline: StagePipeline):
        self.pipeline = pipeline
        self._current: Optional[Sequence] = None

    @property
    def current_sequence(self) -> Optional[str]:
        """Name of the sequence currently being streamed (if any)."""
        return self._current.name if self._current is not None else None

    def feed(self, sequence: Sequence, frame: int) -> FrameResult:
        """Process one frame and return its result immediately.

        Sequences are compared by object identity: a *different* sequence
        object — even one reusing a previous name — starts fresh rather
        than inheriting the previous sequence's tracker state.
        """
        if sequence is not self._current:
            self.pipeline.begin_sequence(sequence)
            self._current = sequence
        return self.pipeline.run_frame(sequence, frame)

    def run(self, source: FrameSource) -> Iterator[FrameResult]:
        """Yield one :class:`FrameResult` per frame of ``source``."""
        for ref in iter_frame_refs(source):
            yield self.feed(ref.sequence, ref.frame)

    def reset(self) -> None:
        """Drop all cross-frame state (tracker included)."""
        self.pipeline.reset()
        self._current = None
