"""Sequence-level execution engines: serial and process-parallel.

A dataset run is embarrassingly parallel across sequences — the simulated
detector's determinism contract makes every frame a pure function of
``(model, seed, sequence, frame)``, so executing sequences on worker
processes yields byte-identical results to the serial loop.  Workers are
seeded deterministically per sequence by construction: each one builds a
fresh system from the same :class:`~repro.core.config.SystemConfig`
(or from a pickled copy of the system), whose seed is part of the config.

``run_on_dataset(..., workers=N)`` (see :mod:`repro.core.pipeline`) picks
the executor via :func:`make_executor`.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple, Union

from repro.core.results import SequenceResult
from repro.datasets.types import Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import SystemConfig
    from repro.core.systems import DetectionSystem

SystemLike = Union["DetectionSystem", "SystemConfig"]

#: Progress callback shape shared across the library:
#: ``callback(done, total, sequence_name)``.
ProgressFn = Callable[[int, int, str], None]


class SequenceExecutionError(RuntimeError):
    """A worker failed while processing one sequence.

    Carries the sequence name so a many-hour parallel run that dies
    reports *which* shard killed it, not just a bare traceback.
    """

    def __init__(self, sequence_name: str, cause: BaseException):
        super().__init__(f"sequence {sequence_name!r} failed: {cause}")
        self.sequence_name = sequence_name


def _count_mapped(executor: str, sequences: List[Sequence]) -> None:
    """Per-run executor counters (one registry touch per map_sequences).

    Deliberately not per-frame: executor throughput is the hot path, so
    the always-on accounting is two counter bumps per *call*.  Per-frame
    and per-stage signals are opt-in via
    :meth:`repro.engine.stages.StagePipeline.instrument`.
    """
    from repro.obs.registry import default_registry

    registry = default_registry()
    registry.counter(
        "executor_sequences_total", "sequences mapped, by executor kind",
        labels=("executor",),
    ).inc(len(sequences), labels=(executor,))
    registry.counter(
        "executor_frames_total", "frames mapped, by executor kind",
        labels=("executor",),
    ).inc(sum(s.num_frames for s in sequences), labels=(executor,))


def effective_cpu_count() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _is_config(target: SystemLike) -> bool:
    from repro.core.config import SystemConfig

    return isinstance(target, SystemConfig)


def _run_sequence_from_config(config: "SystemConfig", sequence: Sequence) -> SequenceResult:
    """Worker entry point: build the system fresh and process one sequence."""
    from repro.core.config import build_system

    return build_system(config).process_sequence(sequence)


def _run_sequence_with_system(
    system: "DetectionSystem", sequence: Sequence
) -> SequenceResult:
    """Worker entry point for a pickled system instance."""
    system.reset()
    return system.process_sequence(sequence)


def config_is_frame_parallel(config: "SystemConfig") -> bool:
    """Whether ``config``'s registered kind declares independent frames."""
    from repro.api.registry import SYSTEMS

    return bool(getattr(SYSTEMS.get(config.kind), "frame_parallel", False))


def run_frame_range(
    target: SystemLike, sequence: Sequence, start: int, stop: int
) -> SequenceResult:
    """Process frames ``[start, stop)`` of one sequence.

    For frame-parallel systems (no cross-frame feedback) any range is a
    pure function of ``(config, sequence, range)`` and splicing adjacent
    ranges back together is byte-identical to the serial frame loop.
    Causal systems (tracker feedback) may only run *prefixes* — a range
    starting past frame 0 would need tracker state it never saw, so it is
    rejected rather than silently computed wrong.
    """
    from repro.core.config import build_system

    if not (0 <= start < stop <= sequence.num_frames):
        raise ValueError(
            f"frame range [{start}, {stop}) is invalid for sequence "
            f"{sequence.name!r} with {sequence.num_frames} frames"
        )
    if _is_config(target):
        independent = config_is_frame_parallel(target)
        label = f"system kind {target.kind!r}"
        target = build_system(target)
    else:
        # Live instances declare independence themselves (default False:
        # unknown systems are assumed causal rather than computed wrong).
        independent = bool(getattr(target, "frame_parallel", False))
        label = f"system {type(target).__name__}"
    if start > 0 and not independent:
        raise ValueError(
            f"{label} has cross-frame feedback; "
            "only prefix ranges (start=0) are causally valid"
        )
    pipeline = target.build_pipeline()
    pipeline.begin_sequence(sequence)
    result = SequenceResult(sequence_name=sequence.name)
    for frame in range(start, stop):
        result.frames.append(pipeline.run_frame(sequence, frame))
    return result


def _run_frame_range_from_config(
    config: "SystemConfig", sequence: Sequence, start: int, stop: int
) -> List["object"]:
    """Worker entry point: one frame chunk, rebuilt from the config."""
    return run_frame_range(config, sequence, start, stop).frames


def split_frame_ranges(
    num_frames: int, chunks: int
) -> List[Tuple[int, int]]:
    """Split ``range(num_frames)`` into ``chunks`` contiguous ranges.

    Near-equal sizes (the first ``num_frames % chunks`` ranges get one
    extra frame); never returns an empty range.
    """
    if num_frames <= 0:
        return []
    chunks = max(1, min(int(chunks), num_frames))
    base, extra = divmod(num_frames, chunks)
    ranges = []
    start = 0
    for i in range(chunks):
        stop = start + base + (1 if i < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


class SerialExecutor:
    """Process sequences one after another in the calling process."""

    workers = 1

    def map_sequences(
        self,
        target: SystemLike,
        sequences: List[Sequence],
        *,
        on_progress: Optional[ProgressFn] = None,
    ) -> List[SequenceResult]:
        if _is_config(target):
            from repro.core.config import build_system

            target = build_system(target)
        results = []
        for sequence in sequences:
            target.reset()
            results.append(target.process_sequence(sequence))
            if on_progress is not None:
                on_progress(len(results), len(sequences), sequence.name)
        _count_mapped("serial", sequences)
        return results


class ParallelExecutor:
    """Fan sequences out to a pool of worker processes.

    Results come back in submission order, so a parallel run's
    :class:`~repro.core.results.SystemRunResult` is indistinguishable from
    a serial one.  Prefer passing a :class:`SystemConfig` — workers then
    rebuild the system from the declarative description instead of
    pickling detector caches across the process boundary.

    Parameters
    ----------
    workers:
        Worker process count (must be >= 1; 1 still goes through the
        pool, which is occasionally useful for isolation testing).
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)

    def map_sequences(
        self,
        target: SystemLike,
        sequences: List[Sequence],
        *,
        on_progress: Optional[ProgressFn] = None,
    ) -> List[SequenceResult]:
        if not sequences:
            return []
        if _is_config(target):
            worker_fn = _run_sequence_from_config
        else:
            worker_fn = _run_sequence_with_system
            # Workers reset the system before use anyway; resetting here
            # avoids pickling populated detector caches once per sequence.
            target.reset()
        max_workers = min(self.workers, len(sequences))
        pool = ProcessPoolExecutor(max_workers=max_workers)
        interrupted = False
        try:
            futures = [pool.submit(worker_fn, target, s) for s in sequences]
            by_future = dict(zip(futures, sequences))
            # Fail fast: observe completions as they land instead of
            # blocking in-order on f.result() — the first worker exception
            # cancels everything still pending and names its sequence.
            pending = set(futures)
            done_count = 0
            while pending:
                finished, pending = wait(pending, return_when=FIRST_EXCEPTION)
                for future in finished:
                    exc = future.exception()
                    if exc is not None:
                        for other in pending:
                            other.cancel()
                        raise SequenceExecutionError(
                            by_future[future].name, exc
                        ) from exc
                    done_count += 1
                    if on_progress is not None:
                        on_progress(
                            done_count, len(sequences), by_future[future].name
                        )
            _count_mapped("process", sequences)
            return [f.result() for f in futures]
        except (KeyboardInterrupt, SystemExit):
            # Don't wait for in-flight sequences on ^C — drop the pool's
            # queue and kill it now.
            interrupted = True
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        finally:
            if not interrupted:
                pool.shutdown(wait=True, cancel_futures=True)


class FrameParallelExecutor:
    """Split *within* sequences: frame-range shards on a process pool.

    Sequence-level parallelism (:class:`ParallelExecutor`) saturates once
    the dataset has fewer sequences than cores — the long tail is one
    worker grinding through the longest sequence.  For systems whose
    registered kind declares ``frame_parallel`` (single, cascade: every
    frame is a pure function of ``(config, sequence, frame)``), this
    executor fans contiguous frame ranges of *every* sequence out to the
    pool and splices the chunks back in order, byte-identical to the
    serial loop.  Systems with cross-frame feedback (catdet, keyframe)
    fall back to whole-sequence shards — tracker causality keeps them
    sequence-serial, exactly like :class:`ParallelExecutor`.

    Requires a declarative :class:`~repro.core.config.SystemConfig`
    target so workers can rebuild the system (and so the kind's
    ``frame_parallel`` declaration can be trusted).
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)

    def map_sequences(
        self,
        target: SystemLike,
        sequences: List[Sequence],
        *,
        on_progress: Optional[ProgressFn] = None,
    ) -> List[SequenceResult]:
        if not _is_config(target):
            raise TypeError(
                "the frame-parallel executor needs a SystemConfig (the "
                "registered kind declares whether frames are independent)"
            )
        if not sequences:
            return []
        if not config_is_frame_parallel(target):
            return ParallelExecutor(self.workers).map_sequences(
                target, sequences, on_progress=on_progress
            )
        # Aim for a few chunks per worker so uneven chunk runtimes level
        # out, without splintering short sequences into per-frame tasks.
        total_frames = sum(s.num_frames for s in sequences)
        target_chunk = max(8, total_frames // (self.workers * 4) or 1)
        plan: List[Tuple[int, Tuple[int, int]]] = []  # (seq idx, range)
        for i, sequence in enumerate(sequences):
            chunks = max(1, sequence.num_frames // target_chunk)
            for frame_range in split_frame_ranges(sequence.num_frames, chunks):
                plan.append((i, frame_range))
        results: List[Optional[SequenceResult]] = [None] * len(sequences)
        chunks_left = [0] * len(sequences)
        for i, _ in plan:
            chunks_left[i] += 1
        parts: List[dict] = [dict() for _ in sequences]
        done_sequences = 0
        pool = ProcessPoolExecutor(max_workers=min(self.workers, len(plan)))
        interrupted = False
        try:
            futures = {
                pool.submit(
                    _run_frame_range_from_config, target, sequences[i], start, stop
                ): (i, start)
                for i, (start, stop) in plan
            }
            pending = set(futures)
            while pending:
                finished, pending = wait(pending, return_when=FIRST_EXCEPTION)
                for future in finished:
                    i, start = futures[future]
                    exc = future.exception()
                    if exc is not None:
                        for other in pending:
                            other.cancel()
                        raise SequenceExecutionError(
                            sequences[i].name, exc
                        ) from exc
                    parts[i][start] = future.result()
                    chunks_left[i] -= 1
                    if chunks_left[i] == 0:
                        frames = []
                        for _, chunk in sorted(parts[i].items()):
                            frames.extend(chunk)
                        results[i] = SequenceResult(
                            sequence_name=sequences[i].name, frames=frames
                        )
                        done_sequences += 1
                        if on_progress is not None:
                            on_progress(
                                done_sequences, len(sequences), sequences[i].name
                            )
            _count_mapped("frames", sequences)
            return results  # type: ignore[return-value]
        except (KeyboardInterrupt, SystemExit):
            interrupted = True
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        finally:
            if not interrupted:
                pool.shutdown(wait=True, cancel_futures=True)


SequenceExecutor = Union[SerialExecutor, ParallelExecutor, FrameParallelExecutor]


def make_executor(workers: Optional[int]) -> SequenceExecutor:
    """Pick the executor for a requested worker count.

    ``None`` or ``1`` → serial; ``0`` → one worker per available CPU;
    ``N >= 2`` → a process pool of ``N`` workers.
    """
    if workers is None or workers == 1:
        return SerialExecutor()
    if workers == 0:
        workers = effective_cpu_count()
        if workers == 1:
            return SerialExecutor()
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return ParallelExecutor(workers)


# --------------------------------------------------------------------- #
# Executor registration
# --------------------------------------------------------------------- #

from repro.api.registry import register_executor  # noqa: E402


@register_executor("auto")
def _auto_executor(workers: Optional[int]) -> SequenceExecutor:
    """``workers``-driven choice: 1/None = serial, 0 = per CPU, N = pool."""
    return make_executor(workers)


@register_executor("serial")
def _serial_executor(workers: Optional[int]) -> SequenceExecutor:
    if workers not in (None, 0, 1):
        raise ValueError(f"the serial executor is single-worker, got workers={workers}")
    return SerialExecutor()


@register_executor("process")
def _process_executor(workers: Optional[int]) -> SequenceExecutor:
    """A process pool even for ``workers=1`` (isolation testing)."""
    if workers is None:
        workers = 1
    if workers == 0:
        workers = effective_cpu_count()
    return ParallelExecutor(workers)


@register_executor("frames")
def _frames_executor(workers: Optional[int]) -> SequenceExecutor:
    """Frame-range sharding for frame-parallel system kinds.

    ``None``/``0`` → one worker per available CPU.  Kinds with
    cross-frame feedback degrade to sequence-level shards.
    """
    if workers in (None, 0):
        workers = effective_cpu_count()
    return FrameParallelExecutor(workers)
