"""Composable per-frame pipeline stages — the CaTDet dataflow made explicit.

The paper's systems differ only in which stages run on each frame:

====================  =====================================================
single model          refinement (full frame) -> ops accounting
cascaded              proposal -> refinement (masked) -> ops accounting
CaTDet                tracker predict -> proposal -> refinement (masked)
                      -> ops accounting -> tracker update
====================  =====================================================

Every stage reads and writes one shared per-frame blackboard, the
:class:`FrameContext`.  A :class:`StagePipeline` executes its stages in
order (:meth:`Stage.process`) and then gives each stage a post-frame hook
(:meth:`Stage.end_frame`) for feedback paths — the tracker consumes the
frame's *final* detections there, exactly the causal loop of Figure 1c.
Stages never look ahead: frame ``t`` sees only data produced on frames
``<= t``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.boxes.mask import RegionMask
from repro.core.results import (
    FrameResult,
    FrameResultBuffer,
    FrameTiming,
    OpsAccount,
    SequenceResult,
)
from repro.datasets.types import Sequence
from repro.detections import Detections
from repro.simdet.detector import SimulatedDetector
from repro.simdet.zoo import ZooEntry
from repro.tracker.catdet_tracker import CaTDetTracker, TrackerConfig


class FrameContext:
    """Mutable blackboard shared by the stages while processing one frame.

    Attributes
    ----------
    sequence / frame:
        Which frame is being processed.
    tracked:
        Tracker-predicted regions (``None`` when no tracker stage ran —
        this is how downstream stages distinguish cascade from CaTDet).
    proposed:
        Proposal-network regions above C-thresh (``None`` without a
        proposal stage).
    regions:
        The union of region sources fed to the refinement network.
    mask:
        The :class:`RegionMask` the refinement network computed over
        (``None`` for full-frame passes).
    coverage_fraction:
        Fraction of the image covered by ``mask`` (1.0 for full frame).
    detections:
        The frame's final detections (set by the refinement stage).
    track_ids:
        Per-detection track identity array (set by the tracker stage's
        ``end_frame`` feedback; ``None`` for tracker-less systems).
    ops:
        The frame's operation account (set by the accounting stage).
    num_regions:
        Region count reported in the :class:`FrameResult`.
    timing:
        Estimated device latency (set by the
        :class:`TimingAccountingStage`; ``None`` without one).
    """

    __slots__ = (
        "sequence",
        "frame",
        "tracked",
        "proposed",
        "regions",
        "mask",
        "coverage_fraction",
        "detections",
        "track_ids",
        "ops",
        "num_regions",
        "timing",
    )

    def __init__(self, sequence: Sequence, frame: int):
        self.sequence = sequence
        self.frame = frame
        self.tracked: Optional[Detections] = None
        self.proposed: Optional[Detections] = None
        self.regions: Optional[Detections] = None
        self.mask: Optional[RegionMask] = None
        self.coverage_fraction: float = 1.0
        self.detections: Detections = Detections.empty()
        self.track_ids = None
        self.ops: OpsAccount = OpsAccount()
        self.num_regions: int = 0
        self.timing: Optional[FrameTiming] = None

    def to_frame_result(self) -> FrameResult:
        """Freeze the blackboard into the public result record."""
        return FrameResult(
            frame=self.frame,
            detections=self.detections,
            ops=self.ops,
            num_regions=self.num_regions,
            coverage_fraction=self.coverage_fraction,
            timing=self.timing,
            track_ids=self.track_ids,
        )


class Stage:
    """One step of the per-frame dataflow.

    Lifecycle: :meth:`begin_sequence` once per sequence, then per frame
    :meth:`process` (in pipeline order) followed by :meth:`end_frame`
    (also in pipeline order, after every stage has processed).  ``reset``
    drops all cross-sequence state.

    Batched execution: :meth:`process_batch` / :meth:`end_frame_batch`
    receive one frame from each of several *different* concurrent
    streams.  The defaults loop over the serial hooks, so every stage is
    batch-correct by construction; stages that wrap a detector override
    ``process_batch`` to coalesce the whole batch into a **single**
    batched detector invocation (the micro-batching seam
    :mod:`repro.serve` is built on).  Per-frame outputs must be
    byte-identical to the serial path whatever the batch composition.
    """

    def begin_sequence(self, sequence: Sequence) -> None:
        """Prepare for a new sequence (clear per-sequence state)."""

    def process(self, ctx: FrameContext) -> None:
        """Consume/produce blackboard fields for the current frame."""
        raise NotImplementedError

    def process_batch(self, ctxs: List[FrameContext]) -> None:
        """Process one frame from each of several concurrent streams."""
        for ctx in ctxs:
            self.process(ctx)

    def end_frame(self, ctx: FrameContext) -> None:
        """Post-frame feedback hook (runs after all ``process`` calls)."""

    def end_frame_batch(self, ctxs: List[FrameContext]) -> None:
        """Batched counterpart of :meth:`end_frame`."""
        for ctx in ctxs:
            self.end_frame(ctx)

    # Multi-stream protocol (opt-in): a stage may define
    #   per_stream() -> Stage
    # returning the instance to use for ONE stream of a multi-stream
    # engine — `self` for stateless stages (sharing enables cross-stream
    # detector batching), a fresh instance for stateful ones (the
    # tracker).  There is deliberately NO base-class default: a stateful
    # subclass that forgot to opt in must degrade to safe fully-isolated
    # pipelines (see StagePipeline.per_stream), never to silently shared
    # mutable state.

    def reset(self) -> None:
        """Drop all internal state (sequence- and run-level)."""


class MacsModel:
    """Memoized operation model for one zoo entry.

    Building a :class:`~repro.flops.rcnn.FasterRCNNOps` walks the
    architecture's layer list — doing that once per frame is pure hot-path
    waste, since the model only depends on the (scaled) image resolution.
    This wrapper caches the op model and the full-frame total per
    resolution, so the per-frame cost of accounting is two multiplies.
    """

    def __init__(
        self,
        entry: ZooEntry,
        *,
        num_classes: int = 2,
        input_scale: float = 1.0,
        num_proposals: int = 300,
    ):
        self.entry = entry
        self.num_classes = int(num_classes)
        self.input_scale = float(input_scale)
        self.num_proposals = int(num_proposals)
        self._models: Dict[Tuple[int, int], object] = {}
        self._full_frame: Dict[Tuple[int, int], float] = {}

    def _scaled_dims(self, sequence: Sequence) -> Tuple[int, int]:
        return (
            max(1, int(round(sequence.width * self.input_scale))),
            max(1, int(round(sequence.height * self.input_scale))),
        )

    def _ops_model(self, sequence: Sequence):
        dims = self._scaled_dims(sequence)
        model = self._models.get(dims)
        if model is None:
            w, h = dims
            if self.entry.detector_type == "retinanet":
                model = self.entry.retinanet_ops(w, h, self.num_classes)
            else:
                model = self.entry.rcnn_ops(w, h, self.num_classes)
            self._models[dims] = model
        return model

    def full_frame(self, sequence: Sequence) -> float:
        """Full-frame MACs at this sequence's resolution (memoized)."""
        dims = self._scaled_dims(sequence)
        macs = self._full_frame.get(dims)
        if macs is None:
            model = self._ops_model(sequence)
            if self.entry.detector_type == "retinanet":
                macs = model.full_frame().total
            else:
                macs = model.full_frame(self.num_proposals).total
            self._full_frame[dims] = macs
        return macs

    def regional(self, sequence: Sequence, coverage: float, n_regions: int) -> float:
        """Region-restricted (refinement) MACs for one frame."""
        model = self._ops_model(sequence)
        if self.entry.detector_type == "retinanet":
            return model.regional(coverage).total
        return model.regional(coverage, n_regions).total


class ProposalStage(Stage):
    """Cheap full-frame scan: proposals above C-thresh become regions."""

    def __init__(self, detector: SimulatedDetector, c_thresh: float):
        self.detector = detector
        self.c_thresh = float(c_thresh)

    def per_stream(self) -> "ProposalStage":
        # Stateless (the shared detector's caches are deterministic and
        # collision-guarded): safe to share across concurrent streams.
        return self

    def process(self, ctx: FrameContext) -> None:
        proposals = self.detector.detect_full_frame(ctx.sequence, ctx.frame)
        ctx.proposed = proposals.above_score(self.c_thresh)

    def process_batch(self, ctxs: List[FrameContext]) -> None:
        batched = self.detector.detect_full_frame_batch(
            [(ctx.sequence, ctx.frame) for ctx in ctxs]
        )
        for ctx, proposals in zip(ctxs, batched):
            ctx.proposed = proposals.above_score(self.c_thresh)


class TrackerStage(Stage):
    """Tracker feedback loop: predict regions, then learn from the output.

    ``process`` publishes the tracker's predicted next-frame locations as
    regions *before* the refinement stage runs; ``end_frame`` feeds the
    frame's final detections back (Figure 1c's arrow from output to
    tracker).  A fresh tracker is created per sequence; between
    ``begin_sequence`` calls the state persists, which is what lets
    :meth:`repro.core.systems.DetectionSystem.stream` keep tracking across
    successive calls on a live feed.
    """

    def __init__(self, config: TrackerConfig):
        self.config = config
        self.tracker: Optional[CaTDetTracker] = None

    def begin_sequence(self, sequence: Sequence) -> None:
        self.tracker = CaTDetTracker(self.config, image_size=sequence.image_size)

    def process(self, ctx: FrameContext) -> None:
        if self.tracker is None:
            self.begin_sequence(ctx.sequence)
        ctx.tracked = self.tracker.predict()

    def end_frame(self, ctx: FrameContext) -> None:
        ctx.track_ids = self.tracker.update(ctx.detections)

    def per_stream(self) -> "TrackerStage":
        # The tracker is the one genuinely stateful stage: each stream of
        # a multi-stream engine needs its own instance.
        return TrackerStage(self.config)

    def reset(self) -> None:
        self.tracker = None


class RefinementStage(Stage):
    """The expensive network: validate regions (or scan the full frame).

    In ``full_frame`` mode (single-model system) it runs the detector over
    the whole image.  Otherwise it unions the blackboard's region sources,
    builds the :class:`RegionMask` and restricts detection to it.
    """

    def __init__(
        self,
        detector: SimulatedDetector,
        *,
        margin: float = 30.0,
        full_frame: bool = False,
        output_threshold: float = 0.0,
    ):
        self.detector = detector
        self.margin = float(margin)
        self.full_frame = bool(full_frame)
        self.output_threshold = float(output_threshold)

    def per_stream(self) -> "RefinementStage":
        return self  # stateless, see ProposalStage.per_stream

    def process(self, ctx: FrameContext) -> None:
        if self.full_frame:
            detections = self.detector.detect_full_frame(ctx.sequence, ctx.frame)
            ctx.detections = self._thresholded(detections)
            ctx.coverage_fraction = 1.0
            return
        self._build_mask(ctx)
        ctx.detections = self._thresholded(
            self.detector.detect_regions(ctx.sequence, ctx.frame, ctx.mask)
        )

    def process_batch(self, ctxs: List[FrameContext]) -> None:
        if self.full_frame:
            batched = self.detector.detect_full_frame_batch(
                [(ctx.sequence, ctx.frame) for ctx in ctxs]
            )
            for ctx, detections in zip(ctxs, batched):
                ctx.detections = self._thresholded(detections)
                ctx.coverage_fraction = 1.0
            return
        # Region masks are cheap CPU-side geometry — build them per frame,
        # then validate every stream's regions in one batched invocation.
        for ctx in ctxs:
            self._build_mask(ctx)
        batched = self.detector.detect_regions_batch(
            [(ctx.sequence, ctx.frame, ctx.mask) for ctx in ctxs]
        )
        for ctx, detections in zip(ctxs, batched):
            ctx.detections = self._thresholded(detections)

    def _thresholded(self, detections: Detections) -> Detections:
        if self.output_threshold > 0:
            return detections.above_score(self.output_threshold)
        return detections

    def _build_mask(self, ctx: FrameContext) -> None:
        sources: List[Detections] = [
            s for s in (ctx.tracked, ctx.proposed) if s is not None
        ]
        regions = Detections.concatenate(sources) if sources else Detections.empty()
        ctx.regions = regions
        ctx.num_regions = len(regions)
        ctx.mask = RegionMask(
            regions.boxes, ctx.sequence.width, ctx.sequence.height, self.margin
        )
        ctx.coverage_fraction = ctx.mask.coverage_fraction()


class OpsAccountingStage(Stage):
    """Exact MAC accounting for the frame, including the Table 3 split.

    ``detailed`` controls the hypothetical single-source refinement costs
    of Table 3 (what the refinement pass *would* cost with only the
    tracker's or only the proposal network's regions).  Computing them
    needs two extra :class:`RegionMask` union-area computations per frame,
    so throughput-oriented callers turn the flag off.
    """

    def __init__(
        self,
        refinement_macs: MacsModel,
        proposal_macs: Optional[MacsModel] = None,
        *,
        margin: float = 30.0,
        detailed: bool = True,
    ):
        self.refinement_macs = refinement_macs
        self.proposal_macs = proposal_macs
        self.margin = float(margin)
        self.detailed = bool(detailed)

    def per_stream(self) -> "OpsAccountingStage":
        return self  # pure math over memoized-pure MacsModels

    def _hypothetical(self, ctx: FrameContext, regions: Detections) -> float:
        mask = RegionMask(
            regions.boxes, ctx.sequence.width, ctx.sequence.height, self.margin
        )
        return self.refinement_macs.regional(
            ctx.sequence, mask.coverage_fraction(), len(regions)
        )

    def process(self, ctx: FrameContext) -> None:
        proposal = (
            self.proposal_macs.full_frame(ctx.sequence) if self.proposal_macs else 0.0
        )
        if ctx.mask is None:
            ctx.ops = OpsAccount(
                proposal=proposal,
                refinement=self.refinement_macs.full_frame(ctx.sequence),
            )
            return
        refinement = self.refinement_macs.regional(
            ctx.sequence, ctx.coverage_fraction, ctx.num_regions
        )
        if ctx.tracked is None:
            # Plain cascade: all refinement work is proposal-sourced.
            ctx.ops = OpsAccount(
                proposal=proposal,
                refinement=refinement,
                refinement_from_proposal=refinement,
            )
            return
        from_tracker = from_proposal = 0.0
        if self.detailed:
            from_tracker = self._hypothetical(ctx, ctx.tracked)
            from_proposal = self._hypothetical(ctx, ctx.proposed)
        ctx.ops = OpsAccount(
            proposal=proposal,
            refinement=refinement,
            refinement_from_tracker=from_tracker,
            refinement_from_proposal=from_proposal,
        )


class TimingAccountingStage(Stage):
    """Estimated per-frame device latency from the unified cost layer.

    Runs after the :class:`OpsAccountingStage`: it charges the frame's
    *measured* MAC account at the device's calibrated throughput
    (``T = alpha * W + b`` per launch) and counts launches from the
    frame's actual structure — one full-frame launch per network that
    ran, or one proposal launch plus one per greedily-merged refinement
    region.  Added to a pipeline when the system's
    :class:`~repro.core.config.SystemConfig` names a ``device``; offline
    runs then report estimated per-frame latency alongside ops.

    ``cost_model`` is a :class:`repro.cost.CostModel` (duck-typed here to
    keep this module import-light).
    """

    def __init__(self, cost_model, *, merge: bool = True):
        self.cost = cost_model
        self.merge = bool(merge)

    def per_stream(self) -> "TimingAccountingStage":
        return self  # pure math over a frozen profile

    def process(self, ctx: FrameContext) -> None:
        if ctx.mask is None:
            ctx.timing = self.cost.frame_timing(ctx.ops, full_frame=True)
            return
        boxes = ctx.regions.boxes if ctx.regions is not None else None
        ctx.timing = self.cost.frame_timing(
            ctx.ops, region_boxes=boxes, merge=self.merge
        )


class _EngineMetrics:
    """Resolved registry handles for instrumented pipeline execution.

    Instrumentation is strictly opt-in: uninstrumented pipelines pay one
    ``is None`` check per frame and nothing else (the bench harness
    gates the instrumented/plain throughput ratio at >= 0.97).  The
    handles are resolved once, so the per-frame cost when *on* is a
    ``perf_counter`` pair per stage plus a few histogram observes.
    """

    __slots__ = ("frames", "stage_seconds", "modeled_seconds", "invocations")

    def __init__(self, registry):
        self.frames = registry.counter(
            "engine_frames_total", "frames processed by the stage pipeline"
        )
        self.stage_seconds = registry.histogram(
            "engine_stage_seconds", "wall time per stage per frame (or batch)",
            labels=("stage",),
        )
        self.modeled_seconds = registry.counter(
            "engine_modeled_seconds_total",
            "modeled device time accumulated (TimingAccountingStage output)",
        )
        self.invocations = registry.counter(
            "engine_detector_invocations_total",
            "detector invocations measured across the system's detectors",
        )

    def record_frame(self, ctx: "FrameContext") -> None:
        self.frames.inc()
        if ctx.timing is not None:
            self.modeled_seconds.inc(ctx.timing.total_seconds)


class StagePipeline:
    """An ordered stage composition executing the per-frame dataflow."""

    def __init__(self, stages: List[Stage]):
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)
        self._metrics: Optional[_EngineMetrics] = None

    def instrument(self, metrics=None) -> "StagePipeline":
        """Opt in to per-stage wall-time and frame counters.

        ``metrics`` is a :class:`~repro.obs.registry.MetricsRegistry`
        (the process default when ``None``).  Returns ``self`` so the
        call chains at construction sites.  Uninstrumented pipelines
        keep a branch-only hot path — see :class:`_EngineMetrics`.
        """
        from repro.obs.registry import resolve_registry

        self._metrics = _EngineMetrics(resolve_registry(metrics))
        return self

    def per_stream(self) -> "StagePipeline":
        """A pipeline for one stream of a multi-stream engine.

        Stateless stages are shared with this pipeline (so their detector
        calls can be coalesced across streams by
        :func:`run_frame_batch`); stateful ones are cloned per stream.
        Raises :class:`TypeError` when any stage has not opted into the
        ``per_stream`` protocol — callers must then fall back to fully
        independent pipelines (safe for arbitrary stage state, at the
        price of no cross-stream coalescing).
        """
        clones = []
        for stage in self.stages:
            fn = getattr(stage, "per_stream", None)
            if fn is None:
                raise TypeError(
                    f"stage {type(stage).__name__} does not implement "
                    "per_stream(); build a fresh pipeline per stream instead"
                )
            clones.append(fn())
        return StagePipeline(clones)

    def begin_sequence(self, sequence: Sequence) -> None:
        """Start a new sequence: every stage clears per-sequence state."""
        for stage in self.stages:
            stage.begin_sequence(sequence)

    def run_frame(self, sequence: Sequence, frame: int) -> FrameResult:
        """Process one frame through all stages and freeze the result."""
        ctx = FrameContext(sequence, frame)
        metrics = self._metrics
        if metrics is None:
            for stage in self.stages:
                stage.process(ctx)
            for stage in self.stages:
                stage.end_frame(ctx)
            return ctx.to_frame_result()
        for stage in self.stages:
            start = time.perf_counter()
            stage.process(ctx)
            metrics.stage_seconds.observe(
                time.perf_counter() - start, labels=(type(stage).__name__,)
            )
        for stage in self.stages:
            stage.end_frame(ctx)
        metrics.record_frame(ctx)
        return ctx.to_frame_result()

    def run_sequence(self, sequence: Sequence) -> SequenceResult:
        """Convenience: ``begin_sequence`` plus every frame in order.

        Frame results accumulate into a columnar
        :class:`~repro.core.results.FrameResultBuffer` (a drop-in
        ``Sequence[FrameResult]``) rather than a list of per-frame objects.
        """
        self.begin_sequence(sequence)
        result = SequenceResult(sequence_name=sequence.name, frames=FrameResultBuffer())
        for frame in range(sequence.num_frames):
            result.frames.append(self.run_frame(sequence, frame))
        return result

    def reset(self) -> None:
        for stage in self.stages:
            stage.reset()


def run_frame_batch(
    work: List[Tuple["StagePipeline", Sequence, int]],
    *,
    metrics=None,
) -> List[FrameResult]:
    """Execute one frame from each of several streams in stage lockstep.

    ``work`` pairs each stream's (already begun) pipeline with the frame
    it should process next.  All pipelines must share the same stage
    composition (the serving layer derives them from one template via
    :meth:`StagePipeline.per_stream`).  Execution walks the stage
    positions in order; at each position, contexts whose pipelines share
    the *same* stage instance are handed to that stage's
    ``process_batch`` in one call — which is where shared detector
    stages coalesce the whole cohort into a single batched detector
    invocation.  Per-stream stages (the tracker) receive their own
    context exactly as on the serial path.

    Frames of different streams share no blackboard state, so the
    results are byte-identical to running each pipeline's
    :meth:`StagePipeline.run_frame` serially.

    ``metrics`` (a :class:`~repro.obs.registry.MetricsRegistry`) opts in
    to per-stage wall-time histograms and frame counters, one observe
    per stage *group* per batch; ``None`` keeps the hot path untouched.
    """
    if not work:
        return []
    handles = _EngineMetrics(metrics) if metrics is not None else None
    n_stages = len(work[0][0].stages)
    for pipeline, _, _ in work:
        if len(pipeline.stages) != n_stages:
            raise ValueError(
                "all pipelines in a batch must share one stage composition"
            )
    ctxs = [FrameContext(sequence, frame) for _, sequence, frame in work]
    for position in range(n_stages):
        for stage, group in _group_by_stage(work, ctxs, position):
            fn = getattr(stage, "process_batch", None)
            start = time.perf_counter() if handles is not None else 0.0
            if fn is not None:
                fn(group)
            else:  # duck-typed stage predating the batch protocol
                for ctx in group:
                    stage.process(ctx)
            if handles is not None:
                handles.stage_seconds.observe(
                    time.perf_counter() - start, labels=(type(stage).__name__,)
                )
    for position in range(n_stages):
        for stage, group in _group_by_stage(work, ctxs, position):
            fn = getattr(stage, "end_frame_batch", None)
            if fn is not None:
                fn(group)
            else:
                for ctx in group:
                    stage.end_frame(ctx)
    if handles is not None:
        for ctx in ctxs:
            handles.record_frame(ctx)
    return [ctx.to_frame_result() for ctx in ctxs]


def _group_by_stage(work, ctxs, position):
    """Contexts grouped by the identity of their stage at ``position``.

    First-appearance order; shared stage instances get the whole cohort
    in one group, per-stream instances a singleton.
    """
    groups: Dict[int, Tuple[Stage, List[FrameContext]]] = {}
    for (pipeline, _, _), ctx in zip(work, ctxs):
        stage = pipeline.stages[position]
        entry = groups.get(id(stage))
        if entry is None:
            groups[id(stage)] = (stage, [ctx])
        else:
            entry[1].append(ctx)
    return list(groups.values())
