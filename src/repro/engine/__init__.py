"""Staged frame-pipeline engine.

The paper's three systems (Figure 1) are compositions of the same few
per-frame stages — proposal, tracker feedback, refinement, operation
accounting.  This package makes that dataflow explicit:

* :mod:`repro.engine.stages` — the :class:`FrameContext` blackboard, the
  :class:`Stage` interface and the concrete stages the systems compose.
* :mod:`repro.engine.stream` — a strictly-causal incremental runner that
  yields one :class:`~repro.core.results.FrameResult` per input frame
  (live/online scenarios).
* :mod:`repro.engine.scheduler` — serial and process-parallel executors
  for dataset-level runs (``run_on_dataset(..., workers=N)``).
"""

from repro.engine.stages import (
    FrameContext,
    MacsModel,
    OpsAccountingStage,
    ProposalStage,
    RefinementStage,
    Stage,
    StagePipeline,
    TimingAccountingStage,
    TrackerStage,
)
from repro.engine.stream import FrameRef, FrameStream, iter_frame_refs
from repro.engine.scheduler import (
    ParallelExecutor,
    SequenceExecutionError,
    SerialExecutor,
    SequenceExecutor,
    make_executor,
)

__all__ = [
    "FrameContext",
    "MacsModel",
    "OpsAccountingStage",
    "ProposalStage",
    "RefinementStage",
    "Stage",
    "StagePipeline",
    "TimingAccountingStage",
    "TrackerStage",
    "FrameRef",
    "FrameStream",
    "iter_frame_refs",
    "ParallelExecutor",
    "SequenceExecutionError",
    "SerialExecutor",
    "SequenceExecutor",
    "make_executor",
]
