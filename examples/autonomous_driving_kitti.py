"""Autonomous-driving scenario: compare all three system designs on KITTI.

Regenerates the paper's Table-2 style comparison and then digs into the
delay metric — the quantity that matters for a car deciding when to brake:
per-class delay at the 0.8-precision operating point, plus the trade-off
curve of delay vs precision (Figure 7).

Usage::

    python examples/autonomous_driving_kitti.py [--sequences N] [--frames N]
"""

import argparse

from repro import (
    HARD,
    MODERATE,
    SystemConfig,
    evaluate_dataset,
    kitti_like_dataset,
    run_on_dataset,
)
from repro.harness.tables import format_table
from repro.metrics.curves import precision_recall_delay_curves

SYSTEMS = (
    SystemConfig("single", "resnet50"),
    SystemConfig("cascade", "resnet50", "resnet10a"),
    SystemConfig("catdet", "resnet50", "resnet10a"),
    SystemConfig("catdet", "resnet50", "resnet10b"),
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sequences", type=int, default=4)
    parser.add_argument("--frames", type=int, default=100)
    args = parser.parse_args()

    dataset = kitti_like_dataset(
        num_sequences=args.sequences, frames_per_sequence=args.frames
    )
    print(f"KITTI-like dataset: {dataset.total_frames} frames, "
          f"{dataset.total_objects} tracks\n")

    rows = []
    evaluations = {}
    for config in SYSTEMS:
        run = run_on_dataset(config, dataset)
        hard = evaluate_dataset(dataset, run.detections_by_sequence, HARD)
        moderate = evaluate_dataset(dataset, run.detections_by_sequence, MODERATE)
        evaluations[config.label] = hard
        rows.append(
            [
                config.label,
                run.mean_ops_gops(),
                moderate.mean_ap(),
                hard.mean_ap(),
                moderate.mean_delay(0.8),
                hard.mean_delay(0.8),
            ]
        )
    print(
        format_table(
            ["system", "ops(G)", "mAP(M)", "mAP(H)", "mD@0.8(M)", "mD@0.8(H)"],
            rows,
            title="System comparison (paper Table 2 shape)",
        )
    )

    # Per-class delay: pedestrians are what delay-critical systems worry
    # about, and they are consistently harder than cars.
    print("\nPer-class first-detection delay at precision 0.8 (Hard):")
    catdet = evaluations["resnet10a, resnet50, CaTDet"]
    t_beta = catdet.threshold_at_precision(0.8)
    for class_eval in catdet.per_class:
        delay_eval = class_eval.as_delay_eval()
        print(
            f"  {class_eval.name:12s} delay = {delay_eval.mean_delay(t_beta):5.2f} "
            f"frames over {len(class_eval.tracks)} tracks "
            f"(recall {class_eval.recall_at(t_beta):.2f})"
        )

    # Figure-7 style: how delay trades against operating precision.
    print("\nDelay vs precision (CaTDet, class Car):")
    points = precision_recall_delay_curves(catdet.class_eval("Car"), num_points=20)
    rows = [
        [p.precision, p.recall, p.mean_delay]
        for p in points
        if p.precision >= 0.5
    ][::2]
    print(format_table(["precision", "recall", "delay(frames)"], rows))


if __name__ == "__main__":
    main()
