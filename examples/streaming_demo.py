"""Streaming: run CaTDet frame-by-frame on a live feed, no look-ahead.

``run_on_dataset`` assumes whole sequences are available up front.  A
deployed CaTDet sits on a camera: frames arrive one at a time and every
frame needs an answer *now*.  ``system.stream(frame_source)`` is that
contract — a strictly-causal generator yielding one ``FrameResult`` per
input frame, with tracker state carried across calls, so the feed can be
consumed in arbitrary chunks (or forever).

Usage::

    python examples/streaming_demo.py
"""

import time

from repro import build_system, kitti_like_dataset, SystemConfig
from repro.engine.stream import sequence_frames

GIGA = 1e9


def main() -> None:
    dataset = kitti_like_dataset(num_sequences=1, frames_per_sequence=120)
    sequence = dataset.sequences[0]

    # detailed_ops=False skips the Table-3 hypothetical mask accounting —
    # three region-mask unions per frame down to one — which is the right
    # trade for latency-sensitive streaming.
    system = build_system(
        SystemConfig("catdet", "resnet50", "resnet10a", detailed_ops=False)
    )

    # --- Consume the feed in chunks, as a live pipeline would. ---------- #
    # Tracker state persists across stream() calls: chunk 2 continues the
    # tracks chunk 1 built.  Only reset() (or a new sequence) clears it.
    print(f"streaming {sequence.name}: {sequence.num_frames} frames\n")
    chunk_size = 40
    latencies = []
    for start in range(0, sequence.num_frames, chunk_size):
        chunk = sequence_frames(sequence, start, start + chunk_size)
        t0 = time.perf_counter()
        ops = 0.0
        detections = 0
        for result in system.stream(chunk):
            detections += len(result.detections)
            ops += result.ops.total
        dt = time.perf_counter() - t0
        n = min(chunk_size, sequence.num_frames - start)
        latencies.append(dt / n)
        print(
            f"frames {start:3d}-{start + n - 1:3d}: "
            f"{1000 * dt / n:6.2f} ms/frame  "
            f"{ops / n / GIGA:5.1f} Gops/frame  "
            f"{detections / n:4.1f} det/frame"
        )

    print(
        f"\nmean simulator latency {1000 * sum(latencies) / len(latencies):.2f} "
        f"ms/frame (strictly causal: every result used only frames <= t)"
    )

    # --- reset() restarts tracking: frame 0 replays exactly. ------------ #
    # Mid-stream, the tracker contributes regions on every frame; after a
    # reset it is empty again, so frame 0's region count and coverage match
    # a frame 0 from a freshly-built system bit-for-bit.
    system.reset()
    replayed = next(iter(system.stream(sequence_frames(sequence, 0, 1))))
    fresh = next(
        iter(
            build_system(
                SystemConfig("catdet", "resnet50", "resnet10a", detailed_ops=False)
            ).stream(sequence_frames(sequence, 0, 1))
        )
    )
    assert replayed.num_regions == fresh.num_regions
    assert replayed.coverage_fraction == fresh.coverage_fraction
    print(
        f"after reset(): frame 0 replays identically to a fresh system "
        f"({replayed.num_regions} proposal-only regions, "
        f"{replayed.coverage_fraction * 100:.0f}% coverage)"
    )


if __name__ == "__main__":
    main()
