"""Tracker playground: the CaTDet tracker and SORT on the same video.

Runs both trackers over a simulated detector's output on one sequence and
reports how well each tracker's next-frame predictions line up with the
ground truth — the quantity that matters for CaTDet, since predictions
become the refinement network's regions of interest.

Usage::

    python examples/tracker_playground.py
"""

import numpy as np

from repro.boxes.iou import iou_matrix
from repro.datasets.kitti import kitti_world_config
from repro.datasets.synth import generate_sequence
from repro.harness.tables import format_table
from repro.simdet.detector import SimulatedDetector
from repro.simdet.zoo import get_model
from repro.tracker.catdet_tracker import CaTDetTracker, TrackerConfig
from repro.tracker.sort import Sort, SortConfig


def prediction_quality(tracker_predictions, ground_truth):
    """Mean best-IoU of predictions against next-frame ground truth."""
    if len(tracker_predictions) == 0 or ground_truth.shape[0] == 0:
        return None
    ious = iou_matrix(ground_truth, tracker_predictions.boxes)
    return float(ious.max(axis=1).mean())


def main() -> None:
    sequence = generate_sequence(kitti_world_config(), 100, "demo", seed=42)
    detector = SimulatedDetector(get_model("resnet50").profile, seed=0)
    print(f"sequence: {sequence.num_frames} frames, {len(sequence.tracks)} tracks\n")

    rows = []
    for eta in (0.0, 0.7, 0.95):
        tracker = CaTDetTracker(
            TrackerConfig(eta=eta), image_size=sequence.image_size
        )
        qualities = []
        for frame in range(sequence.num_frames):
            predictions = tracker.predict()
            if frame > 0:
                quality = prediction_quality(
                    predictions, sequence.annotations(frame).boxes
                )
                if quality is not None:
                    qualities.append(quality)
            tracker.update(detector.detect_full_frame(sequence, frame))
        rows.append([f"CaTDet tracker (eta={eta})", float(np.mean(qualities))])

    # SORT: a tracklet producer; measure its per-frame output vs GT instead.
    sort = Sort(SortConfig(min_hits=1, max_age=2))
    qualities = []
    for frame in range(sequence.num_frames):
        out = sort.update(detector.detect_full_frame(sequence, frame))
        quality = prediction_quality(out, sequence.annotations(frame).boxes)
        if quality is not None:
            qualities.append(quality)
    rows.append(["SORT (Kalman, tracklets)", float(np.mean(qualities))])

    print(
        format_table(
            ["tracker", "mean best-IoU vs ground truth"],
            rows,
            title="Prediction quality (higher = better regions of interest)",
        )
    )
    print(
        "\nThe paper's observation: the exponential-decay model is robust "
        "across a wide\nrange of eta (compare eta=0.7 and eta=0.95), while "
        "needing none of the Kalman\nfilter's per-dataset tuning."
    )


if __name__ == "__main__":
    main()
