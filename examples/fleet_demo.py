"""Tour of the fleet serving subsystem.

Offers one bursty load to three deployments of the same system —
a single edge replica, a static 4-replica edge fleet, and a 1..4
autoscaled fleet — then lets the fleet tuner find the cheapest static
shape meeting the SLO.  Along the way it demonstrates the subsystem's
two headline guarantees:

* **determinism** — per-stream detections are invariant under replica
  count and autoscaling schedule (and a 1-replica fleet is
  byte-identical to the bare ``DetectionServer``);
* **elasticity pays** — the autoscaled fleet meets the same p99 target
  as the static max-size fleet with strictly fewer replica-seconds and
  a lower cost per served frame, because fleets bill by *allocation*
  (alive replica time at the device's hourly rate), not by busy time.

Run with::

    PYTHONPATH=src python examples/fleet_demo.py
"""

from repro.api.session import Session
from repro.core.config import SystemConfig
from repro.datasets.kitti import kitti_like_dataset
from repro.fleet import (
    AutoscalerPolicy,
    FleetServer,
    FleetSpec,
    tune_fleet,
)
from repro.serve import LoadSpec, ServePolicy, generate_load

SYSTEM = SystemConfig("single", "resnet10a", detailed_ops=False)

#: Bursty arrivals whose peaks exceed one edge replica's capacity
#: (~23 fps at batch 4) but whose average load does not — the regime
#: autoscaling exists for.
LOAD = LoadSpec(pattern="bursty", num_streams=4, rate_hz=8.0,
                frames_per_stream=50, seed=11)
POLICY = ServePolicy(max_batch_size=4, max_wait_ms=20.0,
                     queue_capacity=256, slo_ms=2000.0)
AUTOSCALER = AutoscalerPolicy(
    min_replicas=1, max_replicas=4, interval_s=0.5, cooldown_s=1.0,
    slo_p99_ms=2000.0, scale_out_wait_share=0.2, scale_in_occupancy=0.5,
)


def spec(**overrides) -> FleetSpec:
    base = dict(system=SYSTEM, load=LOAD, policy=POLICY,
                replicas=4, devices=("edge",))
    base.update(overrides)
    return FleetSpec(**base)


def detections(report):
    return {
        stream: [
            (fr.frame, fr.detections.boxes.tobytes(),
             fr.detections.scores.tobytes())
            for fr in results
        ]
        for stream, results in report.frame_results.items()
    }


def main() -> None:
    dataset = kitti_like_dataset(num_sequences=4, frames_per_sequence=60)

    def run(fleet_spec):
        return FleetServer(fleet_spec).run(generate_load(LOAD, dataset))

    # ----------------------------------------------------------------- #
    # 1. One edge replica drowns under the bursts.
    # ----------------------------------------------------------------- #
    single = run(spec(replicas=1))
    print("--- one edge replica ---")
    print(single.format())
    print()

    # ----------------------------------------------------------------- #
    # 2. A static 4-replica fleet absorbs them — but bills all four
    #    replicas for the whole makespan, bursts or not.
    # ----------------------------------------------------------------- #
    static = run(spec())
    print("--- static 4-replica fleet ---")
    print(static.format())
    print()

    # ----------------------------------------------------------------- #
    # 3. The autoscaler starts at one replica, scales out while queue-
    #    wait dominates the budget, and drains capacity once batch
    #    occupancy collapses.
    # ----------------------------------------------------------------- #
    auto = run(spec(replicas=1, autoscaler=AUTOSCALER))
    print("--- autoscaled 1..4 fleet ---")
    print(auto.format())
    print()

    # Determinism: scale events moved streams between replicas mid-run,
    # yet every stream's detections match the static fleet's exactly.
    assert detections(auto) == detections(static)
    print("per-stream detections identical across all fleet shapes: OK")

    # Elasticity: same SLO, strictly cheaper.
    for name, report in (("static-4", static), ("autoscaled", auto)):
        p99 = report.slo["fleet"]["p99_ms"]
        print(f"{name:>10}: p99 {p99:7.1f} ms  "
              f"replica-seconds {report.replica_seconds:5.1f}  "
              f"cost/kframe {report.cost_per_frame * 1e3:.4f}")
    assert auto.replica_seconds < static.replica_seconds
    assert auto.cost_per_frame < static.cost_per_frame
    print()

    # ----------------------------------------------------------------- #
    # 4. The tuner: cheapest *static* shape meeting the target, over a
    #    replica-count x device-mix grid.  Cached end to end — run the
    #    demo twice with a cache dir and the sweep is pure hits.
    # ----------------------------------------------------------------- #
    session = Session()
    result = tune_fleet(
        session,
        spec(),
        slo_p99_ms=2000.0,
        replica_counts=(1, 2, 3, 4),
        device_mixes=[("edge",), ("edge", "datacenter")],
    )
    print(result.format())


if __name__ == "__main__":
    main()
