"""Tour of the observability layer: metrics, sinks, health, status.

One process exercises all three ``repro.obs`` surfaces: an instrumented
engine pipeline (per-stage timing into a ``MetricsRegistry``), a served
workload streaming per-frame records through sinks while its counters
balance, and a tiny in-process worker fleet whose health files feed the
same status table that ``python -m repro status <queue-dir>`` renders.

Run with::

    PYTHONPATH=src python examples/obs_demo.py
"""

import json
import tempfile
from pathlib import Path

from repro import DatasetSpec, Session, SystemConfig, build_system
from repro.api.spec import ServeSpec
from repro.cluster import FileWorkQueue, Worker, dispatch_specs
from repro.datasets.kitti import kitti_like_dataset
from repro.obs import JsonlSink, MetricsRegistry, MultiSink, SummaryTableSink
from repro.obs.status import format_status, gather_status
from repro.serve.loadgen import LoadSpec

CATDET = SystemConfig("catdet", "resnet50", "resnet10a", detailed_ops=False)


def main() -> None:
    # ----------------------------------------------------------------- #
    # 1. Opt-in engine instrumentation.  Plain pipelines pay one `is
    #    None` check per frame; instrumented ones record frame counts,
    #    detector invocations and per-stage wall time.
    # ----------------------------------------------------------------- #
    registry = MetricsRegistry()
    dataset = kitti_like_dataset(num_sequences=1, frames_per_sequence=40)
    pipeline = build_system(CATDET).build_pipeline().instrument(registry)
    pipeline.run_sequence(dataset.sequences[0])

    frames = registry.get("engine_frames_total").value()
    stage_seconds = registry.get("engine_stage_seconds")
    print(f"engine: {frames:.0f} frames through "
          f"{len(stage_seconds.labels_seen())} instrumented stages")
    for labels in sorted(stage_seconds.labels_seen()):
        print(f"  stage {labels[0]:<12} "
              f"{1e3 * stage_seconds.sum(labels):7.2f} ms total "
              f"across {stage_seconds.count(labels)} frames")

    # ----------------------------------------------------------------- #
    # 2. Serving with sinks: stream one record per served/shed frame to
    #    a JSONL file (and a summary table), and check the registry's
    #    conservation law — frames in = frames out + drops.
    # ----------------------------------------------------------------- #
    out_dir = Path(tempfile.mkdtemp(prefix="repro-obs-"))
    jsonl_path = out_dir / "frames.jsonl"
    spec = ServeSpec(
        system=CATDET,
        dataset=DatasetSpec("kitti", num_sequences=2, frames_per_sequence=20),
        load=LoadSpec(pattern="poisson", num_streams=3, rate_hz=12.0,
                      frames_per_stream=15, seed=7),
    )
    serve_metrics = MetricsRegistry()
    sink = MultiSink([JsonlSink(jsonl_path), SummaryTableSink()])
    session = Session(cache_dir=None)
    with sink:
        report = session.serve(spec, metrics=serve_metrics, sinks=sink)

    frames_metric = serve_metrics.get("serve_frames_total")
    offered = frames_metric.value(("in",))
    served = frames_metric.value(("out",))
    dropped = serve_metrics.get("serve_drops_total").total()
    assert offered == served + dropped, (offered, served, dropped)
    snap = serve_metrics.snapshot()
    print(f"\nserve: {offered:.0f} offered = {served:.0f} served "
          f"+ {dropped:.0f} dropped  (p99 {report.slo['fleet']['p99_ms']:.1f} ms)")
    records = [json.loads(line) for line in jsonl_path.open()]
    print(f"streamed {len(records)} records to {jsonl_path}")

    # The registry snapshot is plain JSON — ship it anywhere.
    assert json.loads(json.dumps(snap)) == snap

    # ----------------------------------------------------------------- #
    # 3. Fleet health: a worker drains a dispatched grid, publishing
    #    atomic health snapshots next to the queue; `gather_status` is
    #    exactly what `python -m repro status <queue-dir>` prints.
    # ----------------------------------------------------------------- #
    queue_dir = out_dir / "queue"
    queue = FileWorkQueue(queue_dir)
    dispatch_specs(queue, _tiny_grid(), wait=False)

    mid_drain = []

    def snapshot_status(_done: int) -> None:
        # Taken while the worker is alive — its health file is present.
        mid_drain.append(gather_status(queue_dir))

    Worker(queue, cache_dir=None).run(
        idle_timeout=0.5, poll_interval=0.05, on_task=snapshot_status
    )

    print("\nmid-drain (worker alive, health file published):")
    print(format_status(mid_drain[0]))
    final = gather_status(queue_dir)
    print("\nafter the drain (clean exit removed the health file):")
    print(format_status(final))
    assert final["counts"]["dead"] == 0, final["counts"]
    assert final["counts"]["pending"] == 0, final["counts"]


def _tiny_grid():
    from repro import ExperimentSpec

    return [
        ExperimentSpec(
            system=CATDET,
            dataset=DatasetSpec("kitti", num_sequences=1,
                                frames_per_sequence=15, seed=seed),
        )
        for seed in (0, 1)
    ]


if __name__ == "__main__":
    main()
