"""Quickstart: run CaTDet on a synthetic KITTI-like video and evaluate it.

Usage::

    python examples/quickstart.py
"""

from repro import (
    HARD,
    MODERATE,
    SystemConfig,
    evaluate_dataset,
    kitti_like_dataset,
    run_on_dataset,
)


def main() -> None:
    # 1. A video dataset: 3 sequences of 80 frames with ground-truth tracks.
    dataset = kitti_like_dataset(num_sequences=3, frames_per_sequence=80)
    print(
        f"dataset: {len(dataset.sequences)} sequences, "
        f"{dataset.total_frames} frames, {dataset.total_objects} object tracks"
    )

    # 2. The CaTDet system: ResNet-10a proposal network scans every frame,
    #    a tracker predicts where known objects will be, and the ResNet-50
    #    refinement network only looks at those regions.
    config = SystemConfig("catdet", refinement_model="resnet50",
                          proposal_model="resnet10a")
    run = run_on_dataset(config, dataset)

    # 3. Evaluate: mAP at KITTI difficulties, plus the paper's mean-Delay
    #    metric at a fixed precision of 0.8.
    for difficulty in (MODERATE, HARD):
        result = evaluate_dataset(dataset, run.detections_by_sequence, difficulty)
        print(
            f"[{difficulty.name:>8s}] mAP = {result.mean_ap():.3f}   "
            f"mD@0.8 = {result.mean_delay(0.8):.2f} frames"
        )

    # 4. The headline: operation count vs a single-model detector.
    single = run_on_dataset(SystemConfig("single", "resnet50"), dataset)
    print(
        f"\nops per frame: CaTDet {run.mean_ops_gops():.1f} G   "
        f"single-model {single.mean_ops_gops():.1f} G   "
        f"({single.mean_ops_gops() / run.mean_ops_gops():.1f}x saving)"
    )
    print(
        f"refinement network looks at {run.mean_coverage() * 100:.0f}% of each "
        f"frame on average ({run.mean_regions_per_frame():.1f} regions)"
    )


if __name__ == "__main__":
    main()
