"""Tour of the distributed execution subsystem, on one machine.

Spins up a two-worker "fleet" as subprocesses (exactly what
``python -m repro worker <dir>`` runs on other hosts), shards a spec
grid and a dataset run through a shared queue directory, and verifies
the reassembled results are byte-identical to the serial executor.

Run with::

    PYTHONPATH=src python examples/cluster_demo.py
"""

import os
import subprocess
import sys
import tempfile
import time

from repro import (
    DatasetSpec,
    ExecSpec,
    ExperimentSpec,
    MultiHostExecutor,
    Session,
    SystemConfig,
    run_on_dataset,
)
from repro.harness.io import experiment_to_dict, run_to_dict

DATASET = DatasetSpec("kitti", num_sequences=3, frames_per_sequence=40)


def spawn_fleet(queue_dir: str, count: int):
    """Local stand-ins for ``python -m repro worker`` on other hosts."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ["src", env.get("PYTHONPATH", "")] if p
    )
    return [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", queue_dir,
             "--poll", "0.05", "--idle-timeout", "60"],
            env=env,
            stderr=subprocess.DEVNULL,
        )
        for _ in range(count)
    ]


def main() -> None:
    queue_dir = tempfile.mkdtemp(prefix="repro-queue-")
    print(f"shared queue: {queue_dir}")
    fleet = spawn_fleet(queue_dir, count=2)
    try:
        # ------------------------------------------------------------- #
        # 1. A spec grid through Session.run_many — executor="multihost"
        #    batches the whole grid onto the queue; the fleet drains it.
        # ------------------------------------------------------------- #
        grid = [
            ExperimentSpec(
                system=SystemConfig(kind, "resnet50", proposal),
                dataset=DATASET,
                exec=ExecSpec(executor="multihost", queue_dir=queue_dir),
            )
            for kind, proposal in (("cascade", "resnet10a"), ("catdet", "resnet10a"))
        ]
        start = time.perf_counter()
        results = Session().run_many(
            grid,
            on_progress=lambda done, total, label: print(
                f"  [grid] {done}/{total} {label}"
            ),
        )
        print(f"grid of {len(grid)} specs drained by the fleet "
              f"in {time.perf_counter() - start:.1f}s")

        # Byte-identical to running the same specs serially.
        for spec, remote in zip(grid, results):
            local = Session().run(
                ExperimentSpec(system=spec.system, dataset=spec.dataset)
            )
            assert experiment_to_dict(remote) == experiment_to_dict(local)
        print("grid results byte-identical to the serial executor: OK")

        # ------------------------------------------------------------- #
        # 2. One dataset run sharded per sequence via the registered
        #    "multihost" executor kind.
        # ------------------------------------------------------------- #
        config = SystemConfig("catdet", "resnet50", "resnet10b")
        dataset = Session().dataset(DATASET)
        executor = MultiHostExecutor(queue_dir, poll_interval=0.05, timeout=120)
        remote_run = run_on_dataset(
            config, dataset, executor=executor,
            on_progress=lambda done, total, name: print(
                f"  [shard] {done}/{total} {name}"
            ),
        )
        assert run_to_dict(remote_run) == run_to_dict(run_on_dataset(config, dataset))
        print("sequence-sharded run byte-identical to serial: OK")

        # ------------------------------------------------------------- #
        # 3. Revisits are free: the shared cache serves every shard with
        #    no worker involvement at all.
        # ------------------------------------------------------------- #
        for proc in fleet:
            proc.terminate()
        for proc in fleet:
            proc.wait(timeout=10)
        start = time.perf_counter()
        again = run_on_dataset(
            config, dataset,
            executor=MultiHostExecutor(queue_dir, poll_interval=0.05, timeout=10),
        )
        assert run_to_dict(again) == run_to_dict(remote_run)
        print(f"warm revisit with zero workers: "
              f"{time.perf_counter() - start:.2f}s (served from shared cache)")
    finally:
        for proc in fleet:
            if proc.poll() is None:
                proc.kill()


if __name__ == "__main__":
    main()
