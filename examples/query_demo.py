"""Tour of the scenario-query layer.

Builds a temporal-logic query ("a car appears, then a car track
persists five frames, then some car track crosses into the right edge
of the image"), evaluates it three ways — online one frame at a time,
offline over materialized results, and per-stream inside the
micro-batched multi-stream server — and shows that all three emit
identical frames-of-interest windows, plus the multi-camera conjunction
across cameras watching the same scene.

Run with::

    PYTHONPATH=src python examples/query_demo.py
"""

from repro.api.session import Session
from repro.api.spec import DatasetSpec, ExperimentSpec, ServeSpec
from repro.core.config import SystemConfig
from repro.core.pipeline import build_system
from repro.query import (
    ClassPresent,
    Eventually,
    QueryEvaluator,
    QueryReport,
    QuerySpec,
    Region,
    Then,
    TrackEnteredRegion,
    TrackPersisted,
    evaluate_frames,
)
from repro.serve import LoadSpec

SYSTEM = SystemConfig("catdet", "resnet50", "resnet10a", detailed_ops=False)
CAR = 0  # KITTI_CLASSES: Car=0, Pedestrian=1
RIGHT_EDGE = Region(1000, 0, 1242, 375)

QUERY = QuerySpec(
    "car-appears-persists-enters-right-edge",
    Then(
        (
            Eventually(ClassPresent(CAR)),
            Eventually(TrackPersisted(5, label=CAR), within=40),
            Eventually(TrackEnteredRegion(RIGHT_EDGE, label=CAR), within=60),
        )
    ),
)


def main() -> None:
    # Specs are frozen, JSON-exact and content-fingerprinted.
    print(f"query fingerprint: {QUERY.fingerprint[:16]}")
    assert QuerySpec.from_json(QUERY.to_json()) == QUERY

    session = Session()
    dataset_spec = DatasetSpec("kitti", num_sequences=2, frames_per_sequence=60)
    dataset = session.dataset(dataset_spec)

    # ----------------------------------------------------------------- #
    # 1. Online: feed one FrameResult at a time, windows emit live.
    # ----------------------------------------------------------------- #
    sequence = dataset.sequences[0]
    evaluator = QueryEvaluator(QUERY, stream=sequence.name)
    for result in build_system(SYSTEM).stream(sequence):
        window = evaluator.observe(result)
        if window is not None:
            print(
                f"live match on {sequence.name}: frames "
                f"{window.start}..{window.end} (phases {window.phases})"
            )

    # ----------------------------------------------------------------- #
    # 2. Offline: the independent reference over materialized frames —
    #    same windows, different algorithm.
    # ----------------------------------------------------------------- #
    frames = list(build_system(SYSTEM).stream(sequence))
    offline = evaluate_frames(QUERY, frames, stream=sequence.name)
    assert offline.windows == evaluator.windows
    print(f"online == offline: {len(offline.windows)} window(s)\n")

    # Session.query runs the whole experiment (cached) and evaluates
    # every sequence as its own stream.
    report = session.query(ExperimentSpec(SYSTEM, dataset=dataset_spec), QUERY)
    print(report.format())
    print()

    # ----------------------------------------------------------------- #
    # 3. Served: four cameras (two per scene) through the micro-batched
    #    server; per-stream evaluators ride inside the serving loop, and
    #    scenes watched by several cameras get a conjunction section.
    # ----------------------------------------------------------------- #
    serve_spec = ServeSpec(
        system=SYSTEM,
        dataset=dataset_spec,
        load=LoadSpec(pattern="replay", num_streams=4, frames_per_stream=60),
        query=QUERY,
    )
    served = session.serve(serve_spec, use_cache=False).query_report()
    print(served.format())

    # The determinism contract: batching and multi-stream interleaving
    # never change the windows — the served table equals the offline
    # replay byte for byte (tests/test_query.py pins this).
    by_stream = {}
    for i in range(4):
        seq = dataset.sequences[i % len(dataset.sequences)]
        name = f"s{i}:{seq.name}"
        stream_frames = list(build_system(SYSTEM).stream(seq))
        by_stream[name] = evaluate_frames(QUERY, stream_frames, stream=name)
    assert served.format() == QueryReport.build(QUERY, by_stream).format()
    print("\nserved == offline replay, byte for byte")


if __name__ == "__main__":
    main()
