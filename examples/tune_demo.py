"""Closed-loop serving-policy tuning on a calibrated device.

Everything here runs on the unified cost layer: the same ``titanx``
profile that regenerates the paper's Table 7 prices every simulated
micro-batch, so the policy the tuner picks is the one the paper's
hardware would actually want.

Run:
    PYTHONPATH=src python examples/tune_demo.py
"""

from repro.api import DatasetSpec, Session
from repro.api.spec import ServeSpec
from repro.core.config import SystemConfig
from repro.cost import CostModel, get_device
from repro.serve import LoadSpec, ServePolicy

CACHE_DIR = ".repro-cache"
SLO_P99_MS = 350.0


def main() -> None:
    # ---------------------------------------------------------------- #
    # 1. The device: one profile, three consumers.
    # ---------------------------------------------------------------- #
    profile = get_device("titanx")
    cost = CostModel(profile)
    print(f"device {profile.name}: {profile.gops_per_second:.0f} Gops/s, "
          f"{profile.invocation_overhead_ms:.1f} ms/invocation, "
          f"{profile.cpu_frame_overhead * 1e3:.0f} ms CPU/frame")
    single = cost.single_model_timing(254.3e9)
    print(f"Res50 full frame on it: {single.total_seconds * 1e3:.0f} ms "
          f"(paper Table 7: 193 ms)\n")

    # ---------------------------------------------------------------- #
    # 2. The deployment to tune: 2 bursty camera streams of CaTDet.
    # ---------------------------------------------------------------- #
    spec = ServeSpec(
        system=SystemConfig(
            "catdet", "resnet50", "resnet10a", detailed_ops=False
        ),
        dataset=DatasetSpec("kitti", num_sequences=2, frames_per_sequence=40),
        load=LoadSpec(
            pattern="bursty", num_streams=2, rate_hz=3.0,
            frames_per_stream=20, seed=7,
        ),
        policy=ServePolicy(slo_ms=SLO_P99_MS),
        device="titanx",  # calibrates the ServiceModel from the profile
    )
    print(f"tuning {spec.label} against p99 <= {SLO_P99_MS:.0f} ms")

    # ---------------------------------------------------------------- #
    # 3. Sweep (batch size, wait) grids through the cached simulator.
    # ---------------------------------------------------------------- #
    session = Session(cache_dir=CACHE_DIR)
    result = session.tune_serve(
        spec,
        slo_p99_ms=SLO_P99_MS,
        batch_sizes=(1, 2, 4, 8),
        max_waits_ms=(0.0, 25.0),
    )
    print(result.format())
    print(f"\n[cache] {session.cache_hits} hit(s), "
          f"{session.cache_misses} miss(es) — rerun this script and the "
          "whole sweep comes back from the cache")

    if result.best is not None:
        print("\nchosen policy's full report:")
        print(result.best.report.format())


if __name__ == "__main__":
    main()
