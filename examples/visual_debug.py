"""Visual debugging: watch CaTDet work, frame by frame, in the terminal.

Renders a few frames of one sequence as ASCII art: the ground truth (#),
the regions-of-interest the tracker + proposal net select (.) and the
refinement network's detections (o).  Also prints the track timeline of
the sequence so entries/exits and occlusion episodes are visible.

Usage::

    python examples/visual_debug.py [--frames 0 15 40]
"""

import argparse

from repro.boxes.mask import RegionMask
from repro.core.systems import CaTDetSystem
from repro.datasets.kitti import kitti_world_config
from repro.datasets.synth import generate_sequence
from repro.detections import Detections
from repro.tracker.catdet_tracker import CaTDetTracker
from repro.viz import render_frame, render_track_timeline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, nargs="+", default=[1, 20, 45])
    parser.add_argument("--width", type=int, default=110)
    args = parser.parse_args()

    sequence = generate_sequence(kitti_world_config(), 60, "viz-demo", seed=11)
    print(render_track_timeline(sequence, max_tracks=15))
    print()

    system = CaTDetSystem("resnet10a", "resnet50", seed=0)
    tracker = CaTDetTracker(system.tracker_config, image_size=sequence.image_size)

    snapshots = {}
    for frame in range(sequence.num_frames):
        tracked = tracker.predict()
        proposed = system._regions_for_frame(sequence, frame)
        regions = Detections.concatenate([tracked, proposed])
        mask = RegionMask(regions.boxes, sequence.width, sequence.height, 30.0)
        detections = system.refinement_detector.detect_regions(sequence, frame, mask)
        tracker.update(detections)
        if frame in args.frames:
            snapshots[frame] = (detections, mask, len(tracker.tracks))

    for frame in args.frames:
        if frame not in snapshots:
            continue
        detections, mask, n_tracks = snapshots[frame]
        print(render_frame(sequence, frame, detections=detections, mask=mask,
                           width=args.width))
        print(f"tracker is carrying {n_tracks} tracks\n")


if __name__ == "__main__":
    main()
