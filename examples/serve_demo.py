"""Tour of the online serving subsystem.

Generates an open-loop Poisson load over four synthetic camera streams,
serves it through a micro-batched CaTDet server, verifies each stream's
detections are byte-identical to the offline serial run, and compares
batched vs unbatched serving under saturation.

Run with::

    PYTHONPATH=src python examples/serve_demo.py
"""

import numpy as np

from repro.api.session import Session
from repro.api.spec import DatasetSpec, ServeSpec
from repro.core.config import SystemConfig
from repro.core.pipeline import run_on_dataset
from repro.datasets.kitti import kitti_like_dataset
from repro.serve import (
    DetectionServer,
    LoadSpec,
    ServePolicy,
    ServiceModel,
    generate_load,
)

SYSTEM = SystemConfig("catdet", "resnet50", "resnet10a", detailed_ops=False)
#: A fast modeled accelerator: fixed per-invocation overhead dominates,
#: which is exactly when micro-batching pays.
SERVICE = ServiceModel(invocation_overhead_ms=4.0, gops_per_second=8000.0)


def main() -> None:
    dataset = kitti_like_dataset(num_sequences=4, frames_per_sequence=60)

    # ----------------------------------------------------------------- #
    # 1. A comfortable load: everything served, batched, inside the SLO.
    # ----------------------------------------------------------------- #
    load = LoadSpec(pattern="poisson", num_streams=4, rate_hz=10.0,
                    frames_per_stream=60, seed=7)
    policy = ServePolicy(max_batch_size=8, max_wait_ms=25.0, slo_ms=200.0)
    server = DetectionServer(SYSTEM, policy=policy, service=SERVICE)
    report = server.run(generate_load(load, dataset))
    print(report.format())

    # Byte-identity: every stream matches its offline serial run exactly,
    # whatever frames it shared micro-batches with.
    serial = run_on_dataset(SYSTEM, dataset, workers=1)
    for i, sequence in enumerate(dataset.sequences):
        served = report.frame_results[f"s{i}:{sequence.name}"]
        reference = serial.sequences[sequence.name].frames
        for fa, fb in zip(served, reference):
            np.testing.assert_array_equal(fa.detections.boxes, fb.detections.boxes)
            np.testing.assert_array_equal(fa.detections.scores, fb.detections.scores)
    print("\nevery stream byte-identical to the offline serial run ✓")

    # ----------------------------------------------------------------- #
    # 2. Saturation: batched vs unbatched capacity.
    # ----------------------------------------------------------------- #
    heavy = LoadSpec(pattern="poisson", num_streams=4, rate_hz=60.0,
                     frames_per_stream=40, seed=7)
    for label, batch, wait in (("batched", 8, 30.0), ("unbatched", 1, 0.0)):
        rep = DetectionServer(
            SYSTEM,
            policy=ServePolicy(max_batch_size=batch, max_wait_ms=wait,
                               queue_capacity=16, slo_ms=500.0),
            service=SERVICE,
        ).run(generate_load(heavy, dataset))
        print(f"{label:>9}: {rep.throughput_fps:6.1f} frames/s served, "
              f"{rep.invocations} detector invocations, "
              f"mean batch {rep.mean_batch_size:.2f}, shed {rep.frames_shed}")

    # ----------------------------------------------------------------- #
    # 3. Declarative + cached: a ServeSpec served through a Session.
    # ----------------------------------------------------------------- #
    import tempfile

    with tempfile.TemporaryDirectory() as cache_dir:
        session = Session(cache_dir=cache_dir)
        spec = ServeSpec(
            system=SYSTEM,
            dataset=DatasetSpec("kitti", num_sequences=4, frames_per_sequence=60),
            load=load, policy=policy, service=SERVICE,
        )
        fresh = session.serve(spec)
        cached = session.serve(spec)
        assert fresh.to_dict() == cached.to_dict()
        print(f"\nServeSpec {spec.fingerprint[:12]} cached: "
              f"{session.cache_hits} hit(s) — reports bit-identical ✓")


if __name__ == "__main__":
    main()
