"""Pedestrian-detection scenario: CityPersons-style high-resolution video.

Demonstrates the paper's §7 findings: on a harder dataset (small, crowded,
frequently occluded pedestrians at 2048x1024), the plain cascade loses >5 %
mAP while CaTDet's tracker recovers most of it — at ~10x fewer operations
than the single-model detector.  Annotation is sparse (one labeled frame
per 30-frame snippet), so only mAP is evaluated.

Usage::

    python examples/surveillance_citypersons.py [--sequences N]
"""

import argparse

from repro import (
    MODERATE,
    SystemConfig,
    citypersons_like_dataset,
    evaluate_dataset,
    run_on_dataset,
)
from repro.harness.configs import CITYPERSONS_INPUT_SCALE
from repro.harness.tables import format_table

SYSTEMS = (
    ("single-model Res50", SystemConfig(
        "single", "resnet50", num_classes=1, input_scale=CITYPERSONS_INPUT_SCALE)),
    ("cascade 10a+50", SystemConfig(
        "cascade", "resnet50", "resnet10a", num_classes=1,
        input_scale=CITYPERSONS_INPUT_SCALE)),
    ("CaTDet 10a+50", SystemConfig(
        "catdet", "resnet50", "resnet10a", num_classes=1,
        input_scale=CITYPERSONS_INPUT_SCALE)),
    ("CaTDet 10b+50", SystemConfig(
        "catdet", "resnet50", "resnet10b", num_classes=1,
        input_scale=CITYPERSONS_INPUT_SCALE)),
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sequences", type=int, default=24)
    args = parser.parse_args()

    dataset = citypersons_like_dataset(num_sequences=args.sequences)
    labeled = sum(len(v) for v in dataset.labeled_frames.values())
    print(
        f"CityPersons-like dataset: {dataset.total_frames} frames "
        f"({labeled} labeled), {dataset.total_objects} person tracks\n"
    )

    rows = []
    baseline_ops = None
    for name, config in SYSTEMS:
        run = run_on_dataset(config, dataset)
        result = evaluate_dataset(
            dataset, run.detections_by_sequence, MODERATE, with_delay=False
        )
        if baseline_ops is None:
            baseline_ops = run.mean_ops_gops()
        rows.append(
            [
                name,
                result.mean_ap("voc11"),
                run.mean_ops_gops(),
                baseline_ops / run.mean_ops_gops(),
            ]
        )
    print(
        format_table(
            ["system", "mAP (VOC)", "ops(G)", "saving"],
            rows,
            title="CityPersons comparison (paper Table 6 shape)",
        )
    )
    print(
        "\nNote how the cascade (no tracker) loses several mAP points that "
        "CaTDet recovers:\nthe detection system runs on every frame of each "
        "snippet even though only the 20th\nframe is evaluated — the tracker "
        "carries objects across the unlabeled frames."
    )


if __name__ == "__main__":
    main()
