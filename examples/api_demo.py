"""Tour of the declarative API: specs, sessions, caching, registries.

Run with::

    PYTHONPATH=src python examples/api_demo.py
"""

import tempfile
import time

from repro import (
    DatasetSpec,
    EvalSpec,
    ExecSpec,
    ExperimentSpec,
    Session,
    SystemConfig,
    build_system,
    register_system,
)


def main() -> None:
    # ----------------------------------------------------------------- #
    # 1. The three-line happy path.
    # ----------------------------------------------------------------- #
    cache_dir = tempfile.mkdtemp(prefix="repro-cache-")
    session = Session(cache_dir=cache_dir)
    spec = ExperimentSpec(
        system=SystemConfig("catdet", "resnet50", "resnet10a"),
        dataset=DatasetSpec("kitti", num_sequences=2, frames_per_sequence=60),
    )
    result = session.run(spec)
    print(f"{spec.label}: mAP(hard)={result.mean_ap('hard'):.3f} "
          f"mD@0.8={result.mean_delay('hard'):.2f} ops={result.ops_gops:.1f} G")

    # Specs serialize to JSON and back exactly; the fingerprint is the
    # cache key (execution plan excluded — it never changes the numbers).
    assert ExperimentSpec.from_json(spec.to_json()) == spec
    print(f"fingerprint: {spec.fingerprint[:16]}…")

    # ----------------------------------------------------------------- #
    # 2. Warm-cache reruns are served from disk, bit-identical.
    # ----------------------------------------------------------------- #
    start = time.perf_counter()
    again = session.run(spec)
    print(f"warm rerun: {time.perf_counter() - start:.3f}s "
          f"(hits={session.cache_hits}), identical mAP: "
          f"{again.mean_ap('hard') == result.mean_ap('hard')}")

    # ----------------------------------------------------------------- #
    # 3. Grids: run_many dedupes identical specs before scheduling.
    # ----------------------------------------------------------------- #
    grid = [spec.with_system(c_thresh=c) for c in (0.05, 0.1, 0.1, 0.3)]
    grid.append(ExperimentSpec(  # same point, different execution plan
        system=grid[1].system, dataset=grid[1].dataset,
        eval=grid[1].eval, exec=ExecSpec(workers=2),
    ))
    results = session.run_many(grid)
    print(f"grid of {len(grid)} specs -> "
          f"{len({s.fingerprint for s in grid})} computations")
    for s, r in zip(grid, results):
        print(f"  C={s.system.c_thresh:<4} ops={r.ops_gops:6.1f} G "
              f"mAP={r.mean_ap('hard'):.3f}")

    # ----------------------------------------------------------------- #
    # 4. Different scoring protocol = different spec (CityPersons-style).
    # ----------------------------------------------------------------- #
    cp_spec = ExperimentSpec(
        system=SystemConfig("catdet", "resnet50", "resnet10a",
                            num_classes=1, input_scale=0.72),
        dataset=DatasetSpec("citypersons", num_sequences=4),
        eval=EvalSpec(difficulties=("moderate",), ap_method="voc11",
                      with_delay=False),
    )
    cp = session.run(cp_spec)
    print(f"{cp_spec.label}: mAP(voc11)="
          f"{cp.evaluation('moderate').mean_ap('voc11'):.3f}")

    # ----------------------------------------------------------------- #
    # 5. Registries: a new system kind plugs in without touching core.
    # ----------------------------------------------------------------- #
    @register_system("demo-single")
    def _build_demo(config):
        from repro.core.systems import SingleModelSystem

        return SingleModelSystem(config.refinement_model, seed=config.seed)

    demo = build_system(SystemConfig("demo-single", "resnet10a"))
    print(f"registered kind builds: {type(demo).__name__}")
    demo_result = session.run(ExperimentSpec(
        system=SystemConfig("demo-single", "resnet10a"),
        dataset=DatasetSpec("kitti", num_sequences=1, frames_per_sequence=30),
    ))
    print(f"demo-single mAP(hard)={demo_result.mean_ap('hard'):.3f} — "
          f"cached under {demo_result.config.kind!r} like any built-in")


if __name__ == "__main__":
    main()
