"""Dataset + tracking-substrate report.

Prints the statistics of the synthetic KITTI-like and CityPersons-like
worlds (the quantities that make detection hard), then validates the SORT
tracking substrate with CLEAR-MOT metrics under increasing detector noise.

Usage::

    python examples/dataset_report.py
"""

import numpy as np

from repro.datasets import (
    citypersons_like_dataset,
    compute_statistics,
    kitti_like_dataset,
)
from repro.detections import Detections
from repro.harness.tables import format_table
from repro.simdet.detector import SimulatedDetector
from repro.simdet.zoo import get_model
from repro.tracker.mot_metrics import (
    evaluate_tracking,
    hypothesis_frames_from_tracklets,
)
from repro.tracker.sort import Sort, SortConfig


def main() -> None:
    kitti = kitti_like_dataset(num_sequences=3, frames_per_sequence=80)
    cityp = citypersons_like_dataset(num_sequences=8)
    print(compute_statistics(kitti).summary())
    print()
    print(compute_statistics(cityp).summary())

    # Tracking substrate validation: SORT on progressively worse detectors.
    sequence = kitti.sequences[0]
    rows = []
    for detector_name in ("ground-truth", "resnet50", "resnet10c"):
        sort = Sort(SortConfig(min_hits=1, max_age=2))
        for frame in range(sequence.num_frames):
            if detector_name == "ground-truth":
                ann = sequence.annotations(frame)
                detections = Detections(ann.boxes, np.ones(len(ann)), ann.labels)
            else:
                det = SimulatedDetector(get_model(detector_name).profile, seed=0)
                detections = det.detect_full_frame(sequence, frame).above_score(0.5)
            sort.update(detections)
        hyps = hypothesis_frames_from_tracklets(sort.tracklets, sequence.num_frames)
        acc = evaluate_tracking(sequence, hyps, min_gt_height=25.0)
        rows.append(
            [detector_name, acc.mota, acc.motp, acc.id_switches, acc.false_positives]
        )
    print()
    print(
        format_table(
            ["detections from", "MOTA", "MOTP", "ID switches", "FPs"],
            rows,
            title="SORT substrate under increasing detector noise (seq 0, h>=25px)",
        )
    )


if __name__ == "__main__":
    main()
