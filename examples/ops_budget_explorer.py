"""Ops-budget explorer: map the accuracy/compute frontier of CaTDet.

Sweeps the two knobs the paper highlights in §4.3 — the proposal network
choice and its output threshold (C-thresh) — and prints the operating
points, so a deployment can pick the cheapest configuration meeting its
accuracy/delay requirements.

Usage::

    python examples/ops_budget_explorer.py [--budget-gops 40]
"""

import argparse

from repro import (
    HARD,
    SystemConfig,
    evaluate_dataset,
    kitti_like_dataset,
    run_on_dataset,
)
from repro.harness.tables import format_table

PROPOSALS = ("resnet18", "resnet10a", "resnet10b", "resnet10c")
C_VALUES = (0.05, 0.2, 0.5)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget-gops", type=float, default=40.0,
                        help="per-frame operation budget to filter by")
    parser.add_argument("--sequences", type=int, default=3)
    args = parser.parse_args()

    dataset = kitti_like_dataset(num_sequences=args.sequences,
                                 frames_per_sequence=80)

    points = []
    for proposal in PROPOSALS:
        for c_thresh in C_VALUES:
            config = SystemConfig(
                "catdet", "resnet50", proposal, c_thresh=c_thresh
            )
            run = run_on_dataset(config, dataset)
            result = evaluate_dataset(dataset, run.detections_by_sequence, HARD)
            points.append(
                {
                    "proposal": proposal,
                    "c_thresh": c_thresh,
                    "ops": run.mean_ops_gops(),
                    "mAP": result.mean_ap(),
                    "mD": result.mean_delay(0.8),
                }
            )

    points.sort(key=lambda p: p["ops"])
    rows = [
        [p["proposal"], p["c_thresh"], p["ops"], p["mAP"], p["mD"]]
        for p in points
    ]
    print(
        format_table(
            ["proposal", "C-thresh", "ops(G)", "mAP(H)", "mD@0.8(H)"],
            rows,
            title="CaTDet operating points, cheapest first",
        )
    )

    affordable = [p for p in points if p["ops"] <= args.budget_gops]
    if affordable:
        best = max(affordable, key=lambda p: p["mAP"])
        print(
            f"\nbest config within {args.budget_gops:.0f} Gops/frame: "
            f"{best['proposal']} @ C-thresh {best['c_thresh']} -> "
            f"mAP {best['mAP']:.3f}, delay {best['mD']:.2f} frames, "
            f"{best['ops']:.1f} Gops"
        )
    else:
        print(f"\nno configuration fits within {args.budget_gops:.0f} Gops/frame")


if __name__ == "__main__":
    main()
