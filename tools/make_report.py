"""Regenerate every paper table as text (the source for EXPERIMENTS.md).

Usage::

    python tools/make_report.py [--sequences 6] [--frames 100] [--cityp 30]

Takes a few minutes at the default sizes; all numbers are deterministic in
the fixed seeds.
"""

import argparse
import time

from repro.core.config import SystemConfig
from repro.harness.configs import (
    TABLE2_CONFIGS,
    TABLE4_PROPOSAL_MODELS,
    TABLE5_REFINEMENT_MODELS,
    TABLE6_CONFIGS,
)
from repro.harness.experiment import (
    run_experiment,
    standard_citypersons,
    standard_kitti,
)
from repro.harness.tables import format_table
from repro.metrics.kitti_eval import MODERATE
from repro.simdet.zoo import get_model

GIGA = 1e9


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sequences", type=int, default=6)
    parser.add_argument("--frames", type=int, default=100)
    parser.add_argument("--cityp", type=int, default=30)
    args = parser.parse_args()

    start = time.time()
    kitti = standard_kitti(args.sequences, args.frames)
    cache = {}

    def run(config, dataset=kitti, **kw):
        key = (dataset.name, config)
        if key not in cache:
            cache[key] = run_experiment(config, dataset, **kw)
        return cache[key]

    # Table 1
    rows = []
    for name in ("resnet18", "resnet10a", "resnet10b", "resnet10c"):
        entry = get_model(name)
        rows.append([name, entry.rcnn_ops(1242, 375).full_frame(300).total_gops])
    print(format_table(["model", "Gops"], rows, precision=1,
                       title="\nTable 1 — proposal nets"))

    # Table 2
    rows = [
        [c.label, run(c).ops_gops, run(c).mean_ap("moderate"),
         run(c).mean_ap("hard"), run(c).mean_delay("moderate"),
         run(c).mean_delay("hard")]
        for c in TABLE2_CONFIGS
    ]
    print(format_table(["system", "ops", "mAP_M", "mAP_H", "mD_M", "mD_H"],
                       rows, title="\nTable 2 — KITTI main"))

    # Table 3
    rows = []
    for c in TABLE2_CONFIGS[1:]:
        o = run(c).ops_account
        rows.append([c.label, o.total / GIGA, o.proposal / GIGA,
                     o.refinement / GIGA,
                     o.refinement_from_tracker / GIGA or None,
                     o.refinement_from_proposal / GIGA])
    print(format_table(["system", "total", "proposal", "refine", "from_trk",
                        "from_prop"], rows, precision=1,
                       title="\nTable 3 — ops break-down"))

    # Table 4
    rows = []
    for m in TABLE4_PROPOSAL_MODELS:
        s = run(SystemConfig("single", m))
        c = run(SystemConfig("catdet", "resnet50", m))
        rows.append([m, s.mean_ap("hard"), s.mean_delay("hard"),
                     c.mean_ap("hard"), c.mean_delay("hard"), c.ops_gops])
    print(format_table(["proposal", "1m_mAP", "1m_mD", "cat_mAP", "cat_mD",
                        "cat_ops"], rows, title="\nTable 4 — proposal analysis"))

    # Table 5
    rows = []
    for m in TABLE5_REFINEMENT_MODELS:
        s = run(SystemConfig("single", m))
        c = run(SystemConfig("catdet", m, "resnet10b"))
        rows.append([m, s.mean_ap("hard"), s.ops_gops,
                     c.mean_ap("hard"), c.ops_gops])
    print(format_table(["refinement", "1m_mAP", "1m_ops", "cat_mAP", "cat_ops"],
                       rows, title="\nTable 5 — refinement analysis"))

    # Table 6
    cityp = standard_citypersons(args.cityp)
    rows = []
    for c in TABLE6_CONFIGS:
        r = run(c, cityp, difficulties=(MODERATE,), with_delay=False)
        rows.append([c.label, r.evaluation("moderate").mean_ap("voc11"), r.ops_gops])
    print(format_table(["system", "mAP(voc11)", "ops"], rows,
                       title="\nTable 6 — CityPersons"))

    # Table 8
    rows = []
    for c in (SystemConfig("single", "retinanet50"),
              SystemConfig("catdet", "retinanet50", "resnet10a")):
        r = run(c)
        rows.append([c.label, r.ops_gops, r.mean_ap("moderate"),
                     r.mean_delay("moderate")])
    print(format_table(["system", "ops", "mAP_M", "mD_M"], rows,
                       title="\nTable 8 — RetinaNet"))

    print(f"\nreport generated in {time.time() - start:.0f}s")


if __name__ == "__main__":
    main()
