"""Calibration harness: prints paper-vs-measured for the headline numbers.

Usage: python tools/calibrate.py [--full]
"""

import argparse
import time

from repro import (
    HARD,
    MODERATE,
    SystemConfig,
    evaluate_dataset,
    kitti_like_dataset,
    run_on_dataset,
)

PAPER = {
    # label: (ops, mAP_mod, mAP_hard, mD_mod, mD_hard)
    "resnet50, Faster R-CNN": (254.3, 0.812, 0.740, 2.6, 3.3),
    "resnet10a, resnet50, Cascaded": (43.2, 0.807, 0.733, 3.2, 3.8),
    "resnet10a, resnet50, CaTDet": (49.3, 0.814, 0.740, 2.9, 3.7),
    "resnet10b, resnet50, Cascaded": (23.5, 0.787, 0.730, 4.7, 5.7),
    "resnet10b, resnet50, CaTDet": (29.3, 0.815, 0.741, 3.3, 4.1),
    "resnet18, Faster R-CNN": (138.0, None, 0.687, None, 5.9),
    "resnet10a, Faster R-CNN": (20.7, None, 0.606, None, 10.9),
    "resnet10b, Faster R-CNN": (7.5, None, 0.564, None, 13.4),
    "resnet10c, Faster R-CNN": (4.5, None, 0.542, None, 15.4),
}

CONFIGS = [
    SystemConfig("single", "resnet50"),
    SystemConfig("cascade", "resnet50", "resnet10a"),
    SystemConfig("catdet", "resnet50", "resnet10a"),
    SystemConfig("cascade", "resnet50", "resnet10b"),
    SystemConfig("catdet", "resnet50", "resnet10b"),
    SystemConfig("single", "resnet18"),
    SystemConfig("single", "resnet10a"),
    SystemConfig("single", "resnet10b"),
    SystemConfig("single", "resnet10c"),
]


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--full", action="store_true", help="use the full-size dataset")
    parser.add_argument("--seqs", type=int, default=None)
    parser.add_argument("--frames", type=int, default=None)
    args = parser.parse_args()

    n_seq = args.seqs or (8 if args.full else 4)
    n_frames = args.frames or (120 if args.full else 100)
    ds = kitti_like_dataset(num_sequences=n_seq, frames_per_sequence=n_frames)
    print(f"dataset: {ds.total_frames} frames, {ds.total_objects} tracks")
    header = (
        f"{'system':40s} {'ops':>7s}({'paper':>6s}) {'mAP_M':>6s}({'pap':>5s}) "
        f"{'mAP_H':>6s}({'pap':>5s}) {'mD_M':>5s}({'pap':>4s}) {'mD_H':>5s}({'pap':>4s}) t08"
    )
    print(header)
    for cfg in CONFIGS:
        t0 = time.time()
        run = run_on_dataset(cfg, ds)
        rh = evaluate_dataset(ds, run.detections_by_sequence, HARD)
        rm = evaluate_dataset(ds, run.detections_by_sequence, MODERATE)
        paper = PAPER.get(cfg.label, (None,) * 5)
        fmt = lambda v: f"{v:5.3f}" if v is not None else "    -"
        fmtd = lambda v: f"{v:4.1f}" if v is not None else "   -"
        print(
            f"{cfg.label:40s} {run.mean_ops_gops():7.1f}({fmtd(paper[0]):>6s}) "
            f"{rm.mean_ap():6.3f}({fmt(paper[1])}) {rh.mean_ap():6.3f}({fmt(paper[2])}) "
            f"{rm.mean_delay(0.8):5.2f}({fmtd(paper[3])}) {rh.mean_delay(0.8):5.2f}({fmtd(paper[4])}) "
            f"{rh.threshold_at_precision(0.8):.2f}  [{time.time()-t0:.0f}s]"
        )
        for ce in rh.per_class:
            d = ce.as_delay_eval()
            print(
                f"    {ce.name:12s} AP={ce.ap():.3f} ngt={ce.num_gt:5d} "
                f"rec@t0={ce.recall_at(0.0):.2f} prec@.5={d.precision_at(0.5):.2f} "
                f"prec@.8={d.precision_at(0.8):.2f} ntracks={len(ce.tracks)}"
            )


if __name__ == "__main__":
    main()
