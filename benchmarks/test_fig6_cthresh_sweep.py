"""Figure 6: mAP and delay vs the proposal network's output threshold.

The tracker ablation.  Paper findings:
* with the tracker, mAP is nearly FLAT across C-thresh in [0.01, 0.6];
* without it (plain cascade), mAP is lower and more sensitive, and no
  C-thresh recovers the gap (except with the strong ResNet-18 proposal);
* delay INCREASES with C-thresh for both variants (fewer proposals =>
  later first detections).
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.harness.sweeps import cthresh_sweep
from repro.harness.tables import format_table

C_VALUES = (0.02, 0.1, 0.3, 0.6)
MODELS = ("resnet10a", "resnet10c", "resnet18")


def test_fig6_cthresh_tracker_ablation(benchmark, kitti_dataset):
    points = run_once(
        benchmark,
        lambda: cthresh_sweep(
            kitti_dataset, proposal_models=MODELS, c_values=C_VALUES
        ),
    )

    rows = [
        [p.proposal_model, "yes" if p.with_tracker else "no", p.c_thresh,
         p.mean_ap, p.mean_delay, p.ops_gops]
        for p in points
    ]
    print()
    print(
        format_table(
            ["proposal", "tracker", "C-thresh", "mAP(H)", "mD@0.8(H)", "ops(G)"],
            rows,
            title="Figure 6 — C-thresh sweep (KITTI Hard)",
        )
    )

    def series(model, with_tracker, attr):
        pts = sorted(
            (p for p in points
             if p.proposal_model == model and p.with_tracker == with_tracker),
            key=lambda p: p.c_thresh,
        )
        return [getattr(p, attr) for p in pts]

    for model in MODELS:
        tracked_map = series(model, True, "mean_ap")
        untracked_map = series(model, False, "mean_ap")
        # With the tracker, mAP varies little across the sweep...
        assert max(tracked_map) - min(tracked_map) < 0.05, model
        # ...and is at least as good as the cascade everywhere.
        for t_ap, u_ap in zip(tracked_map, untracked_map):
            assert t_ap >= u_ap - 0.01, model

    # Without the tracker, the weak proposal nets can never match the
    # tracked system, at any threshold (paper: "this gap cannot be
    # mitigated").  ResNet-18 (strong) is excused, as in the paper.
    for model in ("resnet10a", "resnet10c"):
        best_untracked = max(series(model, False, "mean_ap"))
        best_tracked = max(series(model, True, "mean_ap"))
        assert best_untracked < best_tracked, model

    # Delay rises as C-thresh increases (both variants, weak proposals).
    for model in ("resnet10a", "resnet10c"):
        for with_tracker in (True, False):
            delays = series(model, with_tracker, "mean_delay")
            assert delays[-1] >= delays[0] - 0.3, (model, with_tracker)

    # Ops fall monotonically with C-thresh for the cascade.
    for model in MODELS:
        ops = series(model, False, "ops_gops")
        assert all(b <= a + 0.5 for a, b in zip(ops, ops[1:])), model
