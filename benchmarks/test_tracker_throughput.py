"""Tracker throughput (paper §4.1: 1082 fps single-threaded).

The tracker must be negligible next to the DNN workload.  This benchmark
measures frames/second of the pure-Python tracker on realistic per-frame
detection loads; pure Python won't match the paper's C-level number, but it
must sustain well over real-time (10 fps KITTI video).
"""

import numpy as np
import pytest

from repro.detections import Detections
from repro.tracker.catdet_tracker import CaTDetTracker, TrackerConfig


def _synthetic_frames(num_frames=100, objects=12, seed=0):
    """Pre-generated detections: `objects` smoothly moving boxes per frame."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(0, 1000, size=(objects, 2))
    vel = rng.normal(scale=3.0, size=(objects, 2))
    sizes = rng.uniform(30, 120, size=objects)
    frames = []
    for t in range(num_frames):
        pos = base + vel * t
        boxes = np.concatenate([pos, pos + sizes[:, None]], axis=1)
        frames.append(
            Detections(
                boxes,
                rng.uniform(0.6, 1.0, size=objects),
                rng.integers(0, 2, size=objects),
            )
        )
    return frames


def test_tracker_throughput(benchmark):
    frames = _synthetic_frames()
    tracker = CaTDetTracker(TrackerConfig(), image_size=(1242, 375))

    def run_one_pass():
        tracker.reset()
        for dets in frames:
            tracker.predict()
            tracker.update(dets)

    benchmark(run_one_pass)
    seconds_per_frame = benchmark.stats["mean"] / len(frames)
    fps = 1.0 / seconds_per_frame
    print(f"\ntracker throughput: {fps:.0f} fps (paper, optimized C-level: 1082 fps)")
    # Must comfortably exceed real-time for 10 fps KITTI video.
    assert fps > 50.0
