"""Tracker throughput (paper §4.1: 1082 fps single-threaded).

The tracker must be negligible next to the DNN workload.  This benchmark
measures frames/second of the pure-Python tracker on realistic per-frame
detection loads; pure Python won't match the paper's C-level number, but it
must sustain well over real-time (10 fps KITTI video).
"""

import numpy as np
import pytest

from repro.detections import Detections
from repro.tracker.catdet_tracker import CaTDetTracker, TrackerConfig


def _synthetic_frames(num_frames=100, objects=12, seed=0):
    """Pre-generated detections: `objects` smoothly moving boxes per frame."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(0, 1000, size=(objects, 2))
    vel = rng.normal(scale=3.0, size=(objects, 2))
    sizes = rng.uniform(30, 120, size=objects)
    frames = []
    for t in range(num_frames):
        pos = base + vel * t
        boxes = np.concatenate([pos, pos + sizes[:, None]], axis=1)
        frames.append(
            Detections(
                boxes,
                rng.uniform(0.6, 1.0, size=objects),
                rng.integers(0, 2, size=objects),
            )
        )
    return frames


def test_tracker_throughput(benchmark):
    frames = _synthetic_frames()
    tracker = CaTDetTracker(TrackerConfig(), image_size=(1242, 375))

    def run_one_pass():
        tracker.reset()
        for dets in frames:
            tracker.predict()
            tracker.update(dets)

    benchmark(run_one_pass)
    seconds_per_frame = benchmark.stats["mean"] / len(frames)
    fps = 1.0 / seconds_per_frame
    print(f"\ntracker throughput: {fps:.0f} fps (paper, optimized C-level: 1082 fps)")
    # Must comfortably exceed real-time for 10 fps KITTI video.
    assert fps > 50.0


def test_batched_tracker_beats_scalar_loop():
    """Acceptance gate: the columnar tracker sustains >= 2x the preserved
    per-object scalar loop's throughput at >= 50 concurrent tracks.

    Both sides run in this process on the same frames, so the ratio is
    machine-independent (unlike raw fps).  Skipped on single-CPU runners,
    where background noise makes the ratio unstable.
    """
    from repro.engine.scheduler import effective_cpu_count
    from repro.tracker.reference import ScalarCaTDetTracker

    if effective_cpu_count() < 2:
        pytest.skip("ratio too noisy on a single-CPU runner")

    import time

    frames = _synthetic_frames(num_frames=40, objects=60, seed=0)

    def best_seconds(tracker_cls, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            tracker = tracker_cls(TrackerConfig(), image_size=(2100, 2100))
            start = time.perf_counter()
            for dets in frames:
                tracker.predict()
                tracker.update(dets)
            best = min(best, time.perf_counter() - start)
        return best

    vec = best_seconds(CaTDetTracker)
    ref = best_seconds(ScalarCaTDetTracker)
    speedup = ref / vec
    print(f"\nbatched vs scalar tracker: {speedup:.2f}x at 60 tracks")
    assert speedup >= 2.0


def test_batched_and_scalar_trackers_agree():
    """The speed comparison is only meaningful if outputs are identical."""
    from repro.tracker.reference import ScalarCaTDetTracker

    frames = _synthetic_frames(num_frames=25, objects=30, seed=1)
    vec = CaTDetTracker(TrackerConfig(), image_size=(2100, 2100))
    ref = ScalarCaTDetTracker(TrackerConfig(), image_size=(2100, 2100))
    for dets in frames:
        pv, pr = vec.predict(), ref.predict()
        np.testing.assert_array_equal(pv.boxes, pr.boxes)
        np.testing.assert_array_equal(pv.scores, pr.scores)
        vec.update(dets)
        ref.update(dets)
