"""Cluster throughput: two workers must drain a queue faster than one.

A multi-sequence dataset run sharded through the file-based work queue
is embarrassingly parallel across workers, so doubling the fleet should
cut wall-clock time — subprocess start-up, queue polling, envelope
serialization and reassembly included.  Each trial uses a fresh queue
directory and cache-less workers so nothing is served from a previous
trial's store.  On a single-core machine there is nothing to win and
the comparison is skipped.
"""

import os
import subprocess
import sys
import time

import pytest

from benchmarks.conftest import KITTI_FRAMES, KITTI_SEQUENCES
from repro.cluster.coordinator import MultiHostExecutor
from repro.core.config import SystemConfig
from repro.core.pipeline import run_on_dataset
from repro.engine.scheduler import effective_cpu_count

CONFIG = SystemConfig("catdet", "resnet50", "resnet10a")


def _spawn_workers(queue_dir, count):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ["src", env.get("PYTHONPATH", "")] if p
    )
    return [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker", str(queue_dir),
                "--no-cache", "--poll", "0.02", "--idle-timeout", "60",
            ],
            env=env,
            stderr=subprocess.DEVNULL,
        )
        for _ in range(count)
    ]


def _timed_fleet_run(tmp_path, kitti_dataset, workers):
    queue_dir = tmp_path / f"queue-{workers}w-{time.monotonic_ns()}"
    executor = MultiHostExecutor(
        queue_dir, cache_dir=None, poll_interval=0.02, timeout=600
    )
    procs = _spawn_workers(queue_dir, workers)
    try:
        t0 = time.perf_counter()
        run = run_on_dataset(CONFIG, kitti_dataset, executor=executor)
        elapsed = time.perf_counter() - t0
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait(timeout=10)
    return run, elapsed


def test_two_workers_beat_one(tmp_path, kitti_dataset):
    if effective_cpu_count() < 2:
        pytest.skip(
            "fleet speedup needs >= 2 CPUs "
            f"(this machine exposes {effective_cpu_count()})"
        )
    # Warm module state (imports, zoo, dataset) out of the comparison.
    run_on_dataset(CONFIG, kitti_dataset, max_sequences=1)

    # Wall-clock comparisons on shared CI runners are noisy; allow one
    # re-measure before declaring the two-worker fleet a loss.
    for attempt in range(2):
        single, single_time = _timed_fleet_run(tmp_path, kitti_dataset, workers=1)
        double, double_time = _timed_fleet_run(tmp_path, kitti_dataset, workers=2)
        # Same answer at any fleet size...
        assert set(single.sequences) == set(double.sequences)
        assert single.mean_ops_gops() == double.mean_ops_gops()
        # ...and faster with two workers draining the queue.
        if double_time < single_time:
            return
    pytest.fail(
        f"2-worker fleet took {double_time:.2f}s vs {single_time:.2f}s "
        f"single-worker on {KITTI_SEQUENCES}x{KITTI_FRAMES}-frame KITTI"
    )
