"""Table 6: CityPersons — same hyper-parameters, harder dataset.

Paper (mAP, Pascal VOC protocol; ops in Gops):

    Res50 single        0.674 / 597
    Res10a+50 Cascaded  0.611 / 79.5
    Res10a+50 CaTDet    0.662 / 87.4
    Res10b+50 Cascaded  0.607 / 39.0
    Res10b+50 CaTDet    0.666 / 46.0

Key shape: the plain cascade loses >5 % mAP here (vs <1 % on KITTI) and the
tracker recovers most of it; CaTDet-10b reaches ~13x fewer ops with <1 %
loss.  Only mAP is evaluated (sparse annotation: the 20th frame of each
30-frame snippet), so delay is not reported.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.configs import TABLE6_CONFIGS
from repro.harness.tables import format_table

PAPER = {
    "resnet50, Faster R-CNN": (0.674, 597.0),
    "resnet10a, resnet50, Cascaded": (0.611, 79.5),
    "resnet10a, resnet50, CaTDet": (0.662, 87.4),
    "resnet10b, resnet50, Cascaded": (0.607, 39.0),
    "resnet10b, resnet50, CaTDet": (0.666, 46.0),
}


def test_table6_citypersons(benchmark, citypersons_experiment):
    results = run_once(
        benchmark, lambda: [citypersons_experiment(c) for c in TABLE6_CONFIGS]
    )

    rows = []
    by_label = {}
    for res in results:
        paper = PAPER[res.label]
        ap = res.evaluation("moderate").mean_ap("voc11")
        rows.append([res.label, ap, paper[0], res.ops_gops, paper[1]])
        by_label[res.label] = (res, ap)
    print()
    print(
        format_table(
            ["system", "mAP", "(pap)", "ops(G)", "(pap)"],
            rows,
            title="Table 6 — CityPersons (VOC protocol)",
        )
    )

    single_res, single_ap = by_label["resnet50, Faster R-CNN"]
    for proposal in ("resnet10a", "resnet10b"):
        cascade_res, cascade_ap = by_label[f"{proposal}, resnet50, Cascaded"]
        catdet_res, catdet_ap = by_label[f"{proposal}, resnet50, CaTDet"]
        # The cascade loses substantially more than on KITTI (>3 %)...
        assert cascade_ap < single_ap - 0.03
        # ...and the tracker recovers most of the gap (CaTDet within 2 %).
        assert catdet_ap > cascade_ap + 0.02
        assert catdet_ap > single_ap - 0.03
        # Ops orderings hold.
        assert cascade_res.ops_gops < catdet_res.ops_gops < single_res.ops_gops

    # Headline savings factor: >8x for the 10b CaTDet (paper: 13x).
    catdet_b = by_label["resnet10b, resnet50, CaTDet"][0]
    assert single_res.ops_gops / catdet_b.ops_gops > 8.0
