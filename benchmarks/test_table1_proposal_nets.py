"""Table 1: proposal-network architectures and their op counts on KITTI.

Paper values (Gops, 1242x375 input, 300 proposals):
ResNet-18 138.3 | ResNet-10a 20.7 | ResNet-10b 7.5 | ResNet-10c 4.5
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.tables import format_table
from repro.simdet.zoo import get_model

PAPER_GOPS = {
    "resnet18": 138.3,
    "resnet10a": 20.7,
    "resnet10b": 7.5,
    "resnet10c": 4.5,
}

KITTI_W, KITTI_H = 1242, 375


def compute_rows():
    rows = []
    for name, paper in PAPER_GOPS.items():
        entry = get_model(name)
        ops = entry.rcnn_ops(KITTI_W, KITTI_H).full_frame(300)
        rows.append(
            [
                name,
                entry.arch.conv1_channels,
                ops.trunk / 1e9,
                ops.rpn / 1e9,
                ops.head / 1e9,
                ops.total_gops,
                paper,
            ]
        )
    return rows


def test_table1_proposal_net_ops(benchmark):
    rows = run_once(benchmark, compute_rows)
    print()
    print(
        format_table(
            ["model", "conv1", "trunk(G)", "rpn(G)", "head(G)", "total(G)", "paper(G)"],
            rows,
            precision=1,
            title="Table 1 — proposal network op counts (KITTI)",
        )
    )
    for row in rows:
        measured, paper = row[5], row[6]
        assert measured == pytest.approx(paper, rel=0.12), row[0]
    # Ordering must match the paper exactly.
    totals = [row[5] for row in rows]
    assert totals == sorted(totals, reverse=True)
