"""Ablation benches for the design choices DESIGN.md calls out.

1. Motion model: exponential decay (paper) vs SORT's Kalman filter.
2. Region margin: the 30 px context trade-off (coverage/ops vs recall).
3. Tracker input threshold: the T-thresh knob of §4.3.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.config import SystemConfig
from repro.core.pipeline import run_on_dataset
from repro.harness.tables import format_table
from repro.metrics.evaluate import evaluate_dataset
from repro.metrics.kitti_eval import HARD
from repro.tracker.catdet_tracker import TrackerConfig


def _evaluate(config, dataset):
    run = run_on_dataset(config, dataset)
    res = evaluate_dataset(dataset, run.detections_by_sequence, HARD)
    return {
        "mAP": res.mean_ap(),
        "mD": res.mean_delay(0.8),
        "ops": run.mean_ops_gops(),
    }


def test_ablation_motion_model(benchmark, kitti_dataset):
    """Decay (paper) vs Kalman (SORT) motion inside CaTDet.

    The paper replaced the Kalman filter because the decay model is robust
    without tuning; both must deliver comparable system accuracy here.
    """

    def run_all():
        out = {}
        for motion in ("decay", "kalman"):
            config = SystemConfig(
                "catdet",
                "resnet50",
                "resnet10a",
                tracker=TrackerConfig(motion_model=motion),
            )
            out[motion] = _evaluate(config, kitti_dataset)
        return out

    results = run_once(benchmark, run_all)
    rows = [[k, v["mAP"], v["mD"], v["ops"]] for k, v in results.items()]
    print()
    print(format_table(["motion", "mAP(H)", "mD@0.8", "ops(G)"], rows,
                       title="Ablation — tracker motion model"))

    assert results["decay"]["mAP"] == pytest.approx(results["kalman"]["mAP"], abs=0.03)
    # The decay model shouldn't cost more ops (similar prediction quality).
    assert results["decay"]["ops"] == pytest.approx(results["kalman"]["ops"], rel=0.15)


def test_ablation_region_margin(benchmark, kitti_dataset):
    """Margin sweep: bigger margins cost ops but protect recall."""

    def run_all():
        out = {}
        for margin in (0.0, 30.0, 80.0):
            config = SystemConfig(
                "catdet", "resnet50", "resnet10a", margin=margin
            )
            out[margin] = _evaluate(config, kitti_dataset)
        return out

    results = run_once(benchmark, run_all)
    rows = [[m, v["mAP"], v["mD"], v["ops"]] for m, v in results.items()]
    print()
    print(format_table(["margin(px)", "mAP(H)", "mD@0.8", "ops(G)"], rows,
                       title="Ablation — region-of-interest margin"))

    ops = [results[m]["ops"] for m in (0.0, 30.0, 80.0)]
    assert ops == sorted(ops)  # ops grow monotonically with margin
    # Dropping the margin entirely must not help accuracy.
    assert results[0.0]["mAP"] <= results[30.0]["mAP"] + 0.02


def test_ablation_tracker_input_threshold(benchmark, kitti_dataset):
    """T-thresh (§4.3): raising it cuts tracker regions, risking accuracy."""

    def run_all():
        out = {}
        for thresh in (0.3, 0.5, 0.9):
            config = SystemConfig(
                "catdet",
                "resnet50",
                "resnet10a",
                tracker=TrackerConfig(input_score_threshold=thresh),
            )
            run = run_on_dataset(config, kitti_dataset)
            res = evaluate_dataset(kitti_dataset, run.detections_by_sequence, HARD)
            out[thresh] = {
                "mAP": res.mean_ap(),
                "ops": run.mean_ops_gops(),
                "tracker_share": run.mean_ops().refinement_from_tracker / 1e9,
            }
        return out

    results = run_once(benchmark, run_all)
    rows = [[t, v["mAP"], v["ops"], v["tracker_share"]] for t, v in results.items()]
    print()
    print(format_table(["T-thresh", "mAP(H)", "ops(G)", "trk_ops(G)"], rows,
                       title="Ablation — tracker input threshold"))

    # Higher threshold -> fewer tracker regions -> fewer tracker-side ops.
    shares = [results[t]["tracker_share"] for t in (0.3, 0.5, 0.9)]
    assert shares == sorted(shares, reverse=True)
    # An extreme threshold degrades toward the plain cascade's accuracy.
    assert results[0.9]["mAP"] <= results[0.5]["mAP"] + 0.01


def test_ablation_error_correlation(benchmark, kitti_dataset):
    """Temporally-correlated detector errors are why the tracker matters.

    With the stock profiles, the plain cascade cannot match CaTDet even at
    a permissive C-thresh (persistent per-object difficulty).  With the
    correlation removed (persistent_weight = 0, temporal_rho ~ 0), misses
    become independent coin flips and the cascade gap shrinks.
    """
    from repro.core.systems import CascadedSystem, CaTDetSystem
    from repro.simdet.zoo import get_model

    def gap(correlated: bool) -> float:
        overrides = {} if correlated else {
            "persistent_weight": 0.0,
            "temporal_weight": 0.0,
        }
        proposal = get_model("resnet10a")
        refinement = get_model("resnet50")
        prop_entry = type(proposal)(
            profile=proposal.profile.with_overrides(**overrides) if overrides else proposal.profile,
            arch=proposal.arch, roi_pool=proposal.roi_pool,
        )
        maps = {}
        for cls, key in ((CascadedSystem, "cascade"), (CaTDetSystem, "catdet")):
            system = cls(prop_entry, refinement, c_thresh=0.02, seed=0)
            from repro.core.results import SystemRunResult
            run = SystemRunResult(system_name=system.name)
            for seq in kitti_dataset.sequences[:3]:
                run.sequences[seq.name] = system.process_sequence(seq)
            subset = type(kitti_dataset)(
                name=kitti_dataset.name,
                classes=kitti_dataset.classes,
                sequences=kitti_dataset.sequences[:3],
            )
            res = evaluate_dataset(subset, run.detections_by_sequence, HARD)
            maps[key] = res.mean_ap()
        return maps["catdet"] - maps["cascade"]

    def run_all():
        return {"correlated": gap(True), "iid": gap(False)}

    gaps = run_once(benchmark, run_all)
    print()
    print(format_table(
        ["error model", "CaTDet - cascade mAP gap"],
        [[k, v] for k, v in gaps.items()],
        title="Ablation — detector error correlation (C-thresh 0.02)",
    ))
    # Removing the correlation shrinks the unrecoverable cascade gap.
    assert gaps["iid"] < gaps["correlated"] + 0.005


def test_keyframe_baseline_comparison(benchmark, kitti_dataset):
    """Key-frame skipping vs CaTDet: cheaper, but pays in delay/accuracy."""
    from repro.core.keyframe import KeyFrameSystem
    from repro.core.pipeline import run_on_dataset as _run

    def run_all():
        out = {}
        catdet = _run(SystemConfig("catdet", "resnet50", "resnet10a"), kitti_dataset)
        res = evaluate_dataset(kitti_dataset, catdet.detections_by_sequence, HARD)
        out["catdet-10a"] = {
            "mAP": res.mean_ap(), "mD": res.mean_delay(0.8),
            "ops": catdet.mean_ops_gops(),
        }
        for stride in (5, 10):
            kf = _run(KeyFrameSystem("resnet50", stride=stride, seed=0), kitti_dataset)
            res = evaluate_dataset(kitti_dataset, kf.detections_by_sequence, HARD)
            out[f"keyframe-{stride}"] = {
                "mAP": res.mean_ap(), "mD": res.mean_delay(0.8),
                "ops": kf.mean_ops_gops(),
            }
        return out

    results = run_once(benchmark, run_all)
    rows = [[k, v["mAP"], v["mD"], v["ops"]] for k, v in results.items()]
    print()
    print(format_table(["system", "mAP(H)", "mD@0.8", "ops(G)"], rows,
                       title="Extension — key-frame skipping baseline"))

    # Key-frame skipping at matched ops (stride 5 ~ 56G) loses accuracy
    # and delay relative to CaTDet.
    assert results["catdet-10a"]["mAP"] > results["keyframe-5"]["mAP"]
    assert results["catdet-10a"]["mD"] <= results["keyframe-10"]["mD"] + 0.5
