"""Table 2: the KITTI headline comparison.

Paper (ops G / mAP Moderate / mAP Hard / mD@0.8 Moderate / mD@0.8 Hard):

    Res50 single        254.3  0.812  0.740  2.6  3.3
    Res10a+50 Cascaded   43.2  0.807  0.733  3.2  3.8
    Res10a+50 CaTDet     49.3  0.814  0.740  2.9  3.7
    Res10b+50 Cascaded   23.5  0.787  0.730  4.7  5.7
    Res10b+50 CaTDet     29.3  0.815  0.741  3.3  4.1

Shape targets asserted below: the ops-savings factors, CaTDet matching the
single model's mAP while the plain cascade drops, and the delay ordering.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.configs import TABLE2_CONFIGS
from repro.harness.tables import format_table

PAPER = {
    "resnet50, Faster R-CNN": (254.3, 0.812, 0.740, 2.6, 3.3),
    "resnet10a, resnet50, Cascaded": (43.2, 0.807, 0.733, 3.2, 3.8),
    "resnet10a, resnet50, CaTDet": (49.3, 0.814, 0.740, 2.9, 3.7),
    "resnet10b, resnet50, Cascaded": (23.5, 0.787, 0.730, 4.7, 5.7),
    "resnet10b, resnet50, CaTDet": (29.3, 0.815, 0.741, 3.3, 4.1),
}


def test_table2_kitti_main_results(benchmark, kitti_experiment):
    results = run_once(
        benchmark, lambda: [kitti_experiment(cfg) for cfg in TABLE2_CONFIGS]
    )
    rows = []
    by_label = {}
    for res in results:
        paper = PAPER[res.label]
        rows.append(
            [
                res.label,
                res.ops_gops,
                paper[0],
                res.mean_ap("moderate"),
                paper[1],
                res.mean_ap("hard"),
                paper[2],
                res.mean_delay("moderate"),
                paper[3],
                res.mean_delay("hard"),
                paper[4],
            ]
        )
        by_label[res.label] = res
    print()
    print(
        format_table(
            [
                "system", "ops", "(pap)", "mAP_M", "(pap)", "mAP_H", "(pap)",
                "mD_M", "(pap)", "mD_H", "(pap)",
            ],
            rows,
            precision=3,
            title="Table 2 — KITTI main results",
        )
    )

    single = by_label["resnet50, Faster R-CNN"]
    catdet_a = by_label["resnet10a, resnet50, CaTDet"]
    catdet_b = by_label["resnet10b, resnet50, CaTDet"]
    cascade_a = by_label["resnet10a, resnet50, Cascaded"]
    cascade_b = by_label["resnet10b, resnet50, Cascaded"]

    # Headline: 5.1x / 8.7x op savings at matched mAP.
    assert single.ops_gops / catdet_a.ops_gops > 4.0
    assert single.ops_gops / catdet_b.ops_gops > 6.0
    # CaTDet matches the single model's mAP (Hard).
    for catdet in (catdet_a, catdet_b):
        assert catdet.mean_ap("hard") >= single.mean_ap("hard") - 0.015
    # The cascade alone drops mAP relative to CaTDet.
    assert cascade_a.mean_ap("hard") < catdet_a.mean_ap("hard")
    assert cascade_b.mean_ap("hard") < catdet_b.mean_ap("hard")
    # Cascades are cheaper than their CaTDet counterparts (no tracker regions).
    assert cascade_a.ops_gops < catdet_a.ops_gops
    assert cascade_b.ops_gops < catdet_b.ops_gops
    # Delay: CaTDet adds little over the single model; cascades add more.
    assert catdet_a.mean_delay("hard") <= single.mean_delay("hard") + 1.2
    assert cascade_a.mean_delay("hard") >= catdet_a.mean_delay("hard") - 0.3
    # Every system's absolute mAP lands within 0.08 of the paper.
    for res in results:
        assert res.mean_ap("hard") == pytest.approx(PAPER[res.label][2], abs=0.08)
        assert res.mean_ap("moderate") == pytest.approx(PAPER[res.label][1], abs=0.08)
