"""Table 4: the proposal network's role — single-model vs CaTDet(P).

Paper (KITTI Hard): the four proposal nets have wildly different
single-model mAPs (0.542-0.687) yet give nearly identical CaTDet mAPs
(0.740-0.742); a better proposal net does, however, clearly lower the delay.

    model       FR-CNN mAP / mD    CaTDet(P) mAP / mD
    ResNet-18      0.687 / 5.9        0.742 / 3.5
    ResNet-10a     0.606 / 10.9       0.740 / 3.7
    ResNet-10b     0.564 / 13.4       0.741 / 4.0
    ResNet-10c     0.542 / 15.4       0.741 / 4.1
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.config import SystemConfig
from repro.harness.configs import TABLE4_PROPOSAL_MODELS
from repro.harness.tables import format_table

PAPER = {
    "resnet18": (0.687, 5.9, 0.742, 3.5),
    "resnet10a": (0.606, 10.9, 0.740, 3.7),
    "resnet10b": (0.564, 13.4, 0.741, 4.0),
    "resnet10c": (0.542, 15.4, 0.741, 4.1),
}


def test_table4_proposal_network_analysis(benchmark, kitti_experiment):
    def run_all():
        out = {}
        for model in TABLE4_PROPOSAL_MODELS:
            single = kitti_experiment(SystemConfig("single", model))
            catdet = kitti_experiment(SystemConfig("catdet", "resnet50", model))
            out[model] = (single, catdet)
        return out

    results = run_once(benchmark, run_all)

    rows = []
    for model, (single, catdet) in results.items():
        paper = PAPER[model]
        rows.append(
            [
                model,
                single.mean_ap("hard"), paper[0],
                single.mean_delay("hard"), paper[1],
                catdet.mean_ap("hard"), paper[2],
                catdet.mean_delay("hard"), paper[3],
            ]
        )
    print()
    print(
        format_table(
            ["proposal", "1model_mAP", "(pap)", "1model_mD", "(pap)",
             "catdet_mAP", "(pap)", "catdet_mD", "(pap)"],
            rows,
            title="Table 4 — proposal network analysis (KITTI Hard)",
        )
    )

    single_maps = [results[m][0].mean_ap("hard") for m in TABLE4_PROPOSAL_MODELS]
    catdet_maps = [results[m][1].mean_ap("hard") for m in TABLE4_PROPOSAL_MODELS]
    catdet_delays = [results[m][1].mean_delay("hard") for m in TABLE4_PROPOSAL_MODELS]
    single_delays = [results[m][0].mean_delay("hard") for m in TABLE4_PROPOSAL_MODELS]

    # Single-model accuracy varies a lot and in the paper's order...
    assert max(single_maps) - min(single_maps) > 0.10
    assert single_maps == sorted(single_maps, reverse=True)
    # ...but CaTDet's mAP is insensitive to the proposal net.
    assert max(catdet_maps) - min(catdet_maps) < 0.035
    # mAP is not sensitive to the proposal net, delay is (paper §6.4):
    # the weakest proposal net must be clearly slower to first detection.
    assert catdet_delays[-1] > catdet_delays[0] - 0.2
    # Single-model delay degrades much faster than CaTDet delay.
    assert single_delays[-1] - single_delays[0] > catdet_delays[-1] - catdet_delays[0]
    # CaTDet always beats its proposal net used alone.
    for model in TABLE4_PROPOSAL_MODELS:
        single, catdet = results[model]
        assert catdet.mean_ap("hard") > single.mean_ap("hard")
        assert catdet.mean_delay("hard") < single.mean_delay("hard") + 0.5
