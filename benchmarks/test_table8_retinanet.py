"""Table 8: CaTDet generalizes to one-shot detectors (Appendix II).

Paper (KITTI Moderate):

    system                 ops(G)   mAP    mD@0.8
    Res50-RetinaNet         96.7   0.773    6.53
    Res10a,Res50-CaTDet     30.8   0.775    6.33

The RetinaNet-based CaTDet achieves BOTH better mAP and delay than the
single-model RetinaNet at >3x fewer operations.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.config import SystemConfig
from repro.harness.tables import format_table

PAPER = {
    "single": (96.7, 0.773, 6.53),
    "catdet": (30.8, 0.775, 6.33),
}


def test_table8_retinanet(benchmark, kitti_experiment):
    def run_all():
        single = kitti_experiment(SystemConfig("single", "retinanet50"))
        catdet = kitti_experiment(
            SystemConfig("catdet", "retinanet50", "resnet10a")
        )
        return single, catdet

    single, catdet = run_once(benchmark, run_all)
    rows = [
        ["Res50-RetinaNet", single.ops_gops, PAPER["single"][0],
         single.mean_ap("moderate"), PAPER["single"][1],
         single.mean_delay("moderate"), PAPER["single"][2]],
        ["Res10a,Res50-CaTDet", catdet.ops_gops, PAPER["catdet"][0],
         catdet.mean_ap("moderate"), PAPER["catdet"][1],
         catdet.mean_delay("moderate"), PAPER["catdet"][2]],
    ]
    print()
    print(
        format_table(
            ["system", "ops(G)", "(pap)", "mAP_M", "(pap)", "mD@0.8", "(pap)"],
            rows,
            title="Table 8 — RetinaNet-based CaTDet (KITTI Moderate)",
        )
    )

    # Single-model RetinaNet ops match the analytic model.
    assert single.ops_gops == pytest.approx(PAPER["single"][0], rel=0.1)
    # Fewer operations for the CaTDet variant.  The paper reports >3x;
    # our simulated region coverage (~0.34 of the frame) is about 3x the
    # coverage the paper's numbers imply, so the measured saving is ~1.6x —
    # see EXPERIMENTS.md for the accounting.
    assert single.ops_gops / catdet.ops_gops > 1.4
    # CaTDet matches (or beats) the single model's mAP.
    assert catdet.mean_ap("moderate") >= single.mean_ap("moderate") - 0.02
    # And does not lose on delay.
    assert catdet.mean_delay("moderate") <= single.mean_delay("moderate") + 1.0
    # RetinaNet is weaker than Faster R-CNN ResNet-50 (0.773 vs 0.812).
    frcnn = kitti_experiment(SystemConfig("single", "resnet50"))
    assert single.mean_ap("moderate") < frcnn.mean_ap("moderate")
