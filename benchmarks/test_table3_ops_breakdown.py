"""Table 3: operation break-down of the cascaded and CaTDet systems.

Paper (Gops): proposal / refinement, and for CaTDet the per-source
refinement costs (tracker, proposal net) which sum to MORE than the actual
refinement total because the two sources propose overlapping regions.

    Res10a+50 Cascaded: total 43.2 = 20.7 + 22.5
    Res10a+50 CaTDet:   total 49.3 = 20.7 + 28.6 (tracker 11.9 + proposal 22.5)
    Res10b+50 Cascaded: total 23.5 =  7.5 + 16.0
    Res10b+50 CaTDet:   total 29.1 =  7.5 + 21.8 (tracker 11.4 + proposal 16.0)
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness.configs import TABLE2_CONFIGS
from repro.harness.tables import format_table

GIGA = 1e9

PAPER = {
    "resnet10a, resnet50, Cascaded": (43.2, 20.7, 22.5, None, None),
    "resnet10a, resnet50, CaTDet": (49.3, 20.7, 28.6, 11.9, 22.5),
    "resnet10b, resnet50, Cascaded": (23.5, 7.5, 16.0, None, None),
    "resnet10b, resnet50, CaTDet": (29.1, 7.5, 21.8, 11.4, 16.0),
}


def test_table3_ops_breakdown(benchmark, kitti_experiment):
    configs = [c for c in TABLE2_CONFIGS if c.kind != "single"]
    results = run_once(benchmark, lambda: [kitti_experiment(c) for c in configs])

    rows = []
    for res in results:
        ops = res.ops_account
        paper = PAPER[res.label]
        rows.append(
            [
                res.label,
                ops.total / GIGA,
                paper[0],
                ops.proposal / GIGA,
                paper[1],
                ops.refinement / GIGA,
                paper[2],
                (ops.refinement_from_tracker / GIGA) if res.config.kind == "catdet" else None,
                paper[3],
                (ops.refinement_from_proposal / GIGA) if res.config.kind == "catdet" else None,
                paper[4],
            ]
        )
    print()
    print(
        format_table(
            [
                "system", "total", "(pap)", "proposal", "(pap)", "refine",
                "(pap)", "from_trk", "(pap)", "from_prop", "(pap)",
            ],
            rows,
            precision=1,
            title="Table 3 — operation break-down (Gops)",
        )
    )

    for res in results:
        ops = res.ops_account
        paper = PAPER[res.label]
        # Proposal component equals the proposal net's full-frame cost.
        assert ops.proposal / GIGA == pytest.approx(paper[1], rel=0.12)
        if res.config.kind == "catdet":
            # The paper's key observation: per-source costs overlap, so
            # they sum to more than the actual refinement total.
            assert (
                ops.refinement_from_tracker + ops.refinement_from_proposal
                > ops.refinement
            )
            # And each source alone is cheaper than the combined run.
            assert ops.refinement_from_tracker < ops.refinement
            assert ops.refinement_from_proposal < ops.refinement

    # CaTDet refinement exceeds the matching cascade's (tracker regions).
    by_label = {r.label: r for r in results}
    for a, b in (
        ("resnet10a, resnet50, CaTDet", "resnet10a, resnet50, Cascaded"),
        ("resnet10b, resnet50, CaTDet", "resnet10b, resnet50, Cascaded"),
    ):
        assert by_label[a].ops_account.refinement > by_label[b].ops_account.refinement
