"""Warm-cache speedup: regenerating Table 2 from the result cache.

The acceptance bar for the content-addressed cache: re-running the same
spec grid against a warm cache must be at least 5x faster than the cold
run, and the served results must be bit-identical to the computed ones.
"""

import time

import numpy as np
import pytest

from repro.api.session import Session
from repro.harness.configs import table2_specs

#: Small enough to keep CI fast, big enough that pipeline time dominates
#: JSON load time by a wide margin.
SEQUENCES = 2
FRAMES = 60

#: The guaranteed floor; in practice warm runs are ~20-50x faster.
MIN_SPEEDUP = 5.0


def _run_grid(session: Session):
    specs = table2_specs(SEQUENCES, FRAMES)
    start = time.perf_counter()
    results = session.run_many(specs)
    return time.perf_counter() - start, results


@pytest.mark.benchmark
def test_warm_table2_at_least_5x_faster(tmp_path):
    cache_dir = tmp_path / "cache"
    cold_session = Session(cache_dir=cache_dir)
    cold_time, cold_results = _run_grid(cold_session)
    assert cold_session.cache_misses == len(cold_results)

    warm_session = Session(cache_dir=cache_dir)
    warm_time, warm_results = _run_grid(warm_session)
    assert warm_session.cache_hits == len(warm_results)
    assert warm_session.cache_misses == 0

    speedup = cold_time / warm_time
    assert speedup >= MIN_SPEEDUP, (
        f"warm cache regeneration only {speedup:.1f}x faster "
        f"(cold {cold_time:.2f}s, warm {warm_time:.2f}s); need >= {MIN_SPEEDUP}x"
    )

    # The cache serves bit-identical numbers, not approximations.
    for cold, warm in zip(cold_results, warm_results):
        assert cold.ops_gops == warm.ops_gops
        for name in cold.run.sequences:
            for fc, fw in zip(
                cold.run.sequences[name].frames, warm.run.sequences[name].frames
            ):
                assert np.array_equal(fc.detections.boxes, fw.detections.boxes)
                assert np.array_equal(fc.detections.scores, fw.detections.scores)
        for diff in cold.evaluations:
            assert cold.evaluations[diff].mean_ap() == warm.evaluations[diff].mean_ap()
