"""Shared benchmark fixtures: datasets and memoized experiment runs.

Experiments are memoized per session so benchmarks that report different
views of the same run (e.g. Table 2's headline numbers and Table 3's ops
break-down) execute the underlying systems only once.
"""

from typing import Dict, Tuple

import pytest

from repro.core.config import SystemConfig
from repro.harness.experiment import (
    ExperimentResult,
    run_experiment,
    standard_citypersons,
    standard_kitti,
)
from repro.metrics.kitti_eval import HARD, MODERATE

#: Benchmark dataset sizes: big enough for stable numbers, small enough for
#: a full table regeneration in minutes.
KITTI_SEQUENCES = 6
KITTI_FRAMES = 100
CITYPERSONS_SEQUENCES = 30

_CACHE: Dict[Tuple, ExperimentResult] = {}


@pytest.fixture(scope="session")
def kitti_dataset():
    return standard_kitti(KITTI_SEQUENCES, KITTI_FRAMES)


@pytest.fixture(scope="session")
def citypersons_dataset():
    return standard_citypersons(CITYPERSONS_SEQUENCES)


@pytest.fixture(scope="session")
def kitti_experiment(kitti_dataset):
    """Memoized experiment runner on the shared KITTI dataset."""

    def runner(config: SystemConfig) -> ExperimentResult:
        key = ("kitti", config)
        if key not in _CACHE:
            _CACHE[key] = run_experiment(config, kitti_dataset, (MODERATE, HARD))
        return _CACHE[key]

    return runner


@pytest.fixture(scope="session")
def citypersons_experiment(citypersons_dataset):
    """Memoized experiment runner on the shared CityPersons dataset."""

    def runner(config: SystemConfig) -> ExperimentResult:
        key = ("citypersons", config)
        if key not in _CACHE:
            _CACHE[key] = run_experiment(
                config, citypersons_dataset, (MODERATE,), with_delay=False
            )
        return _CACHE[key]

    return runner


def run_once(benchmark, func):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
