"""Runnable perf-trajectory harness: ``python benchmarks/bench_harness.py``.

Thin wrapper over :mod:`repro.bench` (the library behind ``repro bench``).
Runs every registered system plus the vectorized-vs-scalar kernel
micro-benchmarks and writes the next ``BENCH_<n>.json`` at the repository
root, so the committed file sequence records the project's performance
trajectory over time.

Flags are shared with the CLI subcommand; ``--help`` lists them.  Typical
invocations::

    python benchmarks/bench_harness.py                # full run, write entry
    python benchmarks/bench_harness.py --quick --check   # CI smoke + gate
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.__main__ import main  # noqa: E402


if __name__ == "__main__":
    argv = sys.argv[1:]
    if not any(a.startswith("--output-dir") for a in argv):
        argv = ["--output-dir", str(REPO_ROOT)] + argv
    sys.exit(main(["bench"] + argv))
