"""Fast-tuning acceptance gate: cold sweeps must beat serial live compute.

Pins the compute/timing split end to end: a cold 12-point ``tune_policy``
sweep — one engine pass recorded into a compute trace, the rest replayed
(in parallel when cores allow) — must be at least 3x faster than the
pre-split behavior of running the full engine per grid point, while every
candidate report stays byte-identical to the serial live run.
"""

import time
from dataclasses import replace

import pytest

from repro.api.session import Session
from repro.api.spec import DatasetSpec, ServeSpec
from repro.bench import bench_tune_sweep
from repro.core.config import SystemConfig
from repro.engine.scheduler import effective_cpu_count
from repro.serve import LoadSpec, ServePolicy, ServiceModel

#: The guaranteed floor on 2+ CPUs; trace replay alone clears it even on
#: one core (measured ~4-5x), parallel workers only widen the margin.
MIN_SPEEDUP = 3.0

BATCH_GRID = (1, 2, 4)
WAIT_GRID = (0.0, 10.0, 25.0, 50.0)


def _spec() -> ServeSpec:
    return ServeSpec(
        system=SystemConfig("catdet", "resnet50", "resnet10a", detailed_ops=False),
        dataset=DatasetSpec("kitti", num_sequences=2, frames_per_sequence=30),
        load=LoadSpec(
            pattern="uniform", num_streams=3, rate_hz=5.0, frames_per_stream=20
        ),
        policy=ServePolicy(slo_ms=500.0),
        service=ServiceModel(invocation_overhead_ms=50.0, gops_per_second=1e6),
    )


def _sweep(tmp_path, name: str, workers):
    session = Session(cache_dir=tmp_path / name)
    start = time.perf_counter()
    result = session.tune_serve(
        _spec(),
        slo_p99_ms=300.0,
        batch_sizes=BATCH_GRID,
        max_waits_ms=WAIT_GRID,
        workers=workers,
    )
    return result, time.perf_counter() - start, session


@pytest.mark.benchmark
def test_cold_sweep_at_least_3x_faster_than_serial_live():
    out = bench_tune_sweep()
    assert out["grid_points"] == 12
    assert out["frames_replayed"] > 0, "fast path never replayed a trace"
    assert out["speedup"] >= MIN_SPEEDUP, (
        f"cold 12-point sweep only {out['speedup']:.1f}x faster than the "
        f"serial live baseline (serial {out['serial_seconds']:.2f}s, fast "
        f"{out['fast_seconds']:.2f}s); need >= {MIN_SPEEDUP}x"
    )


@pytest.mark.benchmark
def test_parallel_sweep_byte_identical_to_serial(tmp_path):
    if effective_cpu_count() < 2:
        workers = 2  # pool still runs on one core; only the wall clock suffers
    else:
        workers = min(2, effective_cpu_count())
    serial, _, _ = _sweep(tmp_path, "serial", workers=1)
    par, _, _ = _sweep(tmp_path, "par", workers=workers)

    assert len(serial.candidates) == len(par.candidates) == 12
    assert (serial.best is None) == (par.best is None)
    if serial.best is not None:
        assert serial.best.spec.fingerprint == par.best.spec.fingerprint
    for a, b in zip(serial.candidates, par.candidates):
        assert a.spec.fingerprint == b.spec.fingerprint
        assert a.feasible == b.feasible
        assert a.alias_of == b.alias_of
        assert a.report.to_dict() == b.report.to_dict()


@pytest.mark.benchmark
def test_trace_replay_point_faster_than_live(tmp_path):
    """A single warm-trace point beats its own live compute by a wide margin."""
    spec = _spec()
    cached = Session(cache_dir=tmp_path / "cache")
    cached.serve(spec)  # records the trace
    assert cached.trace_misses == 1

    point = replace(spec, policy=replace(spec.policy, max_batch_size=4))
    start = time.perf_counter()
    cached.serve(point)
    replay_time = time.perf_counter() - start
    assert cached.trace_hits == 1
    assert cached.frames_replayed > 0

    live = Session()
    start = time.perf_counter()
    live.serve(point, use_cache=False)
    live_time = time.perf_counter() - start
    assert live_time / replay_time >= 2.0, (
        f"trace replay only {live_time / replay_time:.1f}x faster than live "
        f"(live {live_time:.3f}s, replay {replay_time:.3f}s)"
    )
