"""Engine throughput: parallel ``run_on_dataset`` must beat serial.

A dataset run is embarrassingly parallel across sequences, so on a
multi-core machine a 4-worker run of the standard KITTI-like benchmark
should finish in less wall-clock time than the serial loop — pool
start-up, pickling and result transfer included.  On a single-core
machine there is nothing to win and the comparison is skipped.
"""

import time

import pytest

from benchmarks.conftest import KITTI_FRAMES, KITTI_SEQUENCES
from repro.core.config import SystemConfig
from repro.core.pipeline import run_on_dataset
from repro.engine.scheduler import effective_cpu_count

WORKERS = 4

CONFIG = SystemConfig("catdet", "resnet50", "resnet10a")


def _timed_run(kitti_dataset, workers):
    t0 = time.perf_counter()
    run = run_on_dataset(CONFIG, kitti_dataset, workers=workers)
    return run, time.perf_counter() - t0


def test_parallel_run_beats_serial_wall_clock(kitti_dataset):
    if effective_cpu_count() < 2:
        pytest.skip(
            "parallel speedup needs >= 2 CPUs "
            f"(this machine exposes {effective_cpu_count()})"
        )
    # Warm the dataset-independent module state (imports, zoo) out of the
    # comparison, then time serial vs parallel on identical work.
    run_on_dataset(CONFIG, kitti_dataset, max_sequences=1)

    # Wall-clock comparisons on shared CI runners are noisy; allow one
    # re-measure before declaring the parallel path a loss.
    for attempt in range(2):
        serial, serial_time = _timed_run(kitti_dataset, workers=1)
        parallel, parallel_time = _timed_run(kitti_dataset, workers=WORKERS)
        # Same answer at any worker count...
        assert set(serial.sequences) == set(parallel.sequences)
        assert serial.mean_ops_gops() == parallel.mean_ops_gops()
        # ...and faster in parallel.
        if parallel_time < serial_time:
            return
    pytest.fail(
        f"{WORKERS}-worker run took {parallel_time:.2f}s vs "
        f"{serial_time:.2f}s serial on "
        f"{KITTI_SEQUENCES}x{KITTI_FRAMES}-frame KITTI"
    )


def test_serial_throughput_reported(kitti_dataset, capsys):
    """Record serial frames/sec so regressions show up in benchmark logs."""
    run, elapsed = _timed_run(kitti_dataset, workers=1)
    frames = sum(seq.num_frames for seq in run.sequences.values())
    with capsys.disabled():
        print(
            f"\n[engine-throughput] serial catdet: "
            f"{frames / elapsed:.1f} frames/s ({frames} frames in {elapsed:.2f}s)"
        )
    assert frames == KITTI_SEQUENCES * KITTI_FRAMES
