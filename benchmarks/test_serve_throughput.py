"""Serving throughput: micro-batched must beat unbatched per-frame serving.

Under saturation (offered load beyond engine capacity) throughput equals
engine capacity, and capacity is where batching pays: every batched
detector invocation spreads the accelerator's fixed per-call overhead
over the whole cohort, while per-frame serving pays it once per frame
per network.  The gate compares aggregate served throughput of the same
open-loop load on a batched server (size 8) versus an unbatched one
(size 1) over >= 4 concurrent streams.

The serving clock is a deterministic simulation driven by *measured*
detector invocations and MACs, so the comparison is exact — the CPU
guard only matches the other benchmarks' etiquette of not asserting
performance claims on starved single-core runners.
"""

import time

import pytest

from repro.core.config import SystemConfig
from repro.engine.scheduler import effective_cpu_count
from repro.serve import (
    DetectionServer,
    LoadSpec,
    ServePolicy,
    ServiceModel,
    generate_load,
)

STREAMS = 4
CONFIG = SystemConfig("catdet", "resnet50", "resnet10a", detailed_ops=False)

#: A fast modeled accelerator: per-invocation overhead is a large share
#: of per-frame service time — the regime micro-batching exists for.
SERVICE = ServiceModel(invocation_overhead_ms=4.0, gops_per_second=8000.0)

#: Offered load far beyond capacity so served throughput == capacity.
LOAD = LoadSpec(
    pattern="poisson", num_streams=STREAMS, rate_hz=60.0,
    frames_per_stream=40, seed=11,
)


def _serve(kitti_dataset, batch_size, max_wait_ms):
    policy = ServePolicy(
        max_batch_size=batch_size,
        max_wait_ms=max_wait_ms,
        queue_capacity=16,
        slo_ms=500.0,
    )
    server = DetectionServer(CONFIG, policy=policy, service=SERVICE)
    t0 = time.perf_counter()
    report = server.run(generate_load(LOAD, kitti_dataset))
    return report, time.perf_counter() - t0


def test_batched_serving_beats_unbatched_throughput(kitti_dataset, capsys):
    if effective_cpu_count() < 2:
        pytest.skip(
            "throughput comparisons are skipped on starved runners "
            f"(this machine exposes {effective_cpu_count()} CPU)"
        )
    batched, batched_wall = _serve(kitti_dataset, batch_size=8, max_wait_ms=30.0)
    unbatched, unbatched_wall = _serve(kitti_dataset, batch_size=1, max_wait_ms=0.0)

    with capsys.disabled():
        print(
            f"\n[serve-throughput] {STREAMS} streams: "
            f"batched {batched.throughput_fps:.1f} fps "
            f"(mean batch {batched.mean_batch_size:.2f}, "
            f"{batched.invocations} invocations, wall {batched_wall:.2f}s) vs "
            f"unbatched {unbatched.throughput_fps:.1f} fps "
            f"({unbatched.invocations} invocations, wall {unbatched_wall:.2f}s)"
        )

    # Same load, same engine: batching must coalesce...
    assert batched.mean_batch_size > 1.5
    assert batched.invocations < unbatched.invocations
    # ...and convert the amortized overhead into aggregate throughput.
    assert batched.throughput_fps > unbatched.throughput_fps


def test_batched_serving_cuts_slo_violations_at_capacity(kitti_dataset):
    """At an offered load the unbatched server cannot sustain, batching
    serves more frames within the same SLO."""
    load = LoadSpec(
        pattern="uniform", num_streams=STREAMS, rate_hz=30.0,
        frames_per_stream=30, seed=0,
    )
    policy = dict(queue_capacity=32, slo_ms=300.0)
    batched = DetectionServer(
        CONFIG,
        policy=ServePolicy(max_batch_size=8, max_wait_ms=20.0, **policy),
        service=SERVICE,
    ).run(generate_load(load, kitti_dataset))
    unbatched = DetectionServer(
        CONFIG,
        policy=ServePolicy(max_batch_size=1, max_wait_ms=0.0, **policy),
        service=SERVICE,
    ).run(generate_load(load, kitti_dataset))
    batched_ok = batched.frames_served - batched.slo["fleet"]["violations"]
    unbatched_ok = unbatched.frames_served - unbatched.slo["fleet"]["violations"]
    assert batched_ok > unbatched_ok
