"""Table 7: measured execution time on the GPU platform (Appendix I).

Paper (seconds per frame, Maxwell Titan X):

    system                total   GPU-only
    Res50 Faster R-CNN    0.193     0.159
    Res10a-Res50 CaTDet   0.094     0.042

We drive the paper's own linear timing model (T = alpha*W + b) with the
actual per-frame regions produced by a CaTDet run, including the greedy box
merging the appendix introduces.
"""

import pytest

from benchmarks.conftest import run_once
from repro.cost import CostModel
from repro.gpu.table7 import compute_table7_timings
from repro.harness.tables import format_table

GIGA = 1e9

PAPER = {
    "single": (0.193, 0.159),
    "catdet": (0.094, 0.042),
}


def compute_timings(kitti_dataset):
    # One sequence suffices for stable means; the shared implementation
    # (also behind `python -m repro table7`) captures each frame's real
    # regions from a CaTDet re-run and prices them on the titanx profile.
    timings = compute_table7_timings(
        kitti_dataset.sequences[:1], CostModel.for_device("titanx")
    )
    return timings.single, timings.catdet_total_seconds, timings.catdet_gpu_seconds


def test_table7_gpu_timing(benchmark, kitti_dataset):
    single, catdet_total, catdet_gpu = run_once(
        benchmark, lambda: compute_timings(kitti_dataset)
    )
    rows = [
        ["Res50 Faster R-CNN", single.total_seconds, PAPER["single"][0],
         single.gpu_seconds, PAPER["single"][1]],
        ["Res10a-Res50 CaTDet", catdet_total, PAPER["catdet"][0],
         catdet_gpu, PAPER["catdet"][1]],
    ]
    print()
    print(
        format_table(
            ["system", "total(s)", "(pap)", "GPU-only(s)", "(pap)"],
            rows,
            title="Table 7 — GPU timing model",
        )
    )

    # Single-model numbers are calibrated up to the ~11 % op-count gap
    # between our analytic ResNet-50 model and the paper's count.
    assert single.gpu_seconds == pytest.approx(PAPER["single"][1], rel=0.25)
    assert single.total_seconds == pytest.approx(PAPER["single"][0], rel=0.25)
    # CaTDet: ~2x total and ~4x GPU-only speedup (paper's headline).
    assert single.total_seconds / catdet_total > 1.5
    assert single.gpu_seconds / catdet_gpu > 2.5
    # Within a factor-ish band of the paper's absolute numbers.
    assert catdet_gpu == pytest.approx(PAPER["catdet"][1], rel=0.6)
    assert catdet_total == pytest.approx(PAPER["catdet"][0], rel=0.5)
