"""Table 7: measured execution time on the GPU platform (Appendix I).

Paper (seconds per frame, Maxwell Titan X):

    system                total   GPU-only
    Res50 Faster R-CNN    0.193     0.159
    Res10a-Res50 CaTDet   0.094     0.042

We drive the paper's own linear timing model (T = alpha*W + b) with the
actual per-frame regions produced by a CaTDet run, including the greedy box
merging the appendix introduces.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.config import SystemConfig
from repro.core.systems import CaTDetSystem
from repro.gpu.timing import (
    GpuTimingModel,
    estimate_catdet_timing,
    estimate_single_model_timing,
)
from repro.harness.tables import format_table

GIGA = 1e9

PAPER = {
    "single": (0.193, 0.159),
    "catdet": (0.094, 0.042),
}


def compute_timings(kitti_dataset):
    model = GpuTimingModel()
    sequence = kitti_dataset.sequences[0]

    from repro.simdet.zoo import get_model

    single_macs = (
        get_model("resnet50").rcnn_ops(sequence.width, sequence.height)
        .full_frame(300)
        .total
    )
    single = estimate_single_model_timing(single_macs, model)

    # Re-run CaTDet on one sequence, capturing per-frame regions.
    system = CaTDetSystem("resnet10a", "resnet50", seed=0)
    proposal_macs = system._proposal_macs(sequence)
    head_per_proposal = get_model("resnet50").rcnn_ops(
        sequence.width, sequence.height
    ).head_macs_per_proposal

    from repro.boxes.mask import RegionMask
    from repro.detections import Detections
    from repro.tracker.catdet_tracker import CaTDetTracker

    tracker = CaTDetTracker(system.tracker_config, image_size=sequence.image_size)
    frame_timings = []
    for frame in range(sequence.num_frames):
        tracked = tracker.predict()
        proposed = system._regions_for_frame(sequence, frame)
        regions = Detections.concatenate([tracked, proposed])
        mask = RegionMask(regions.boxes, sequence.width, sequence.height, 30.0)
        detections = system.refinement_detector.detect_regions(sequence, frame, mask)
        tracker.update(detections)
        timing = estimate_catdet_timing(
            proposal_macs,
            mask.expanded_boxes,
            head_per_proposal * len(regions),
            model,
        )
        frame_timings.append(timing)

    catdet_gpu = float(np.mean([t.gpu_seconds for t in frame_timings]))
    catdet_total = float(np.mean([t.total_seconds for t in frame_timings]))
    return single, catdet_total, catdet_gpu


def test_table7_gpu_timing(benchmark, kitti_dataset):
    single, catdet_total, catdet_gpu = run_once(
        benchmark, lambda: compute_timings(kitti_dataset)
    )
    rows = [
        ["Res50 Faster R-CNN", single.total_seconds, PAPER["single"][0],
         single.gpu_seconds, PAPER["single"][1]],
        ["Res10a-Res50 CaTDet", catdet_total, PAPER["catdet"][0],
         catdet_gpu, PAPER["catdet"][1]],
    ]
    print()
    print(
        format_table(
            ["system", "total(s)", "(pap)", "GPU-only(s)", "(pap)"],
            rows,
            title="Table 7 — GPU timing model",
        )
    )

    # Single-model numbers are calibrated up to the ~11 % op-count gap
    # between our analytic ResNet-50 model and the paper's count.
    assert single.gpu_seconds == pytest.approx(PAPER["single"][1], rel=0.25)
    assert single.total_seconds == pytest.approx(PAPER["single"][0], rel=0.25)
    # CaTDet: ~2x total and ~4x GPU-only speedup (paper's headline).
    assert single.total_seconds / catdet_total > 1.5
    assert single.gpu_seconds / catdet_gpu > 2.5
    # Within a factor-ish band of the paper's absolute numbers.
    assert catdet_gpu == pytest.approx(PAPER["catdet"][1], rel=0.6)
    assert catdet_total == pytest.approx(PAPER["catdet"][0], rel=0.5)
