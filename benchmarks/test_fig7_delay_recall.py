"""Figure 7: recall and delay vs precision, per class.

Paper findings: recall and delay are strongly (anti-)correlated as the
operating precision changes; pedestrians (smaller boxes) are harder than
cars; the delay curve is noisier than the recall curve because fewer
instances are involved.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.config import SystemConfig
from repro.harness.tables import format_table
from repro.metrics.curves import precision_recall_delay_curves


def test_fig7_delay_recall_precision_curves(benchmark, kitti_experiment):
    result = run_once(
        benchmark,
        lambda: kitti_experiment(SystemConfig("catdet", "resnet50", "resnet10a")),
    )
    evaluation = result.evaluation("hard")

    curves = {}
    for class_name in ("Car", "Pedestrian"):
        points = precision_recall_delay_curves(
            evaluation.class_eval(class_name), num_points=24
        )
        # Restrict to the paper's plotted precision range [0.5, 1.0].
        curves[class_name] = [p for p in points if p.precision >= 0.5]

    for class_name, points in curves.items():
        rows = [[p.precision, p.recall, p.mean_delay] for p in points[::3]]
        print()
        print(
            format_table(
                ["precision", "recall", "delay"],
                rows,
                title=f"Figure 7 — {class_name} (KITTI Hard)",
            )
        )

    for class_name, points in curves.items():
        assert len(points) >= 5, f"too few operating points for {class_name}"
        recalls = np.array([p.recall for p in points])
        delays = np.array([p.mean_delay for p in points])
        # Strong anti-correlation between recall and delay across the
        # precision sweep (paper: "recall and delay have a strong
        # correlation as the precision changes").
        corr = np.corrcoef(recalls, delays)[0, 1]
        assert corr < -0.6, f"{class_name}: corr={corr:.2f}"

    # Pedestrians are harder: lower recall and higher delay at comparable
    # precision (paper: "pedestrians usually have smaller bounding boxes").
    def value_near_precision(points, attr, target=0.8):
        best = min(points, key=lambda p: abs(p.precision - target))
        return getattr(best, attr)

    assert value_near_precision(curves["Pedestrian"], "recall") <= \
        value_near_precision(curves["Car"], "recall") + 0.05
    assert value_near_precision(curves["Pedestrian"], "mean_delay") >= \
        value_near_precision(curves["Car"], "mean_delay") - 0.5
