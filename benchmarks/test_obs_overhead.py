"""Observability overhead: instrumentation must cost under ~3% fps.

The engine's per-stage timing and frame counters are opt-in
(:meth:`~repro.engine.stages.StagePipeline.instrument`), and the
acceptance bar for the observability layer is that opting in costs less
than 3% of throughput.  :func:`repro.bench.bench_obs_overhead` measures
plain and instrumented runs interleaved, best-of-repeats, so the gated
ratio is robust to scheduler noise on shared CI runners.
"""

from repro.bench import bench_obs_overhead

#: Minimum instrumented/plain fps ratio (the "≤ 3% overhead" acceptance
#: bar, with the measurement itself allowed to absorb the slack).
MIN_FPS_RATIO = 0.97


def test_instrumented_engine_keeps_97_percent_of_plain_fps():
    # Noise allowance on shared runners: one re-measure before failing.
    result = None
    for attempt in range(2):
        result = bench_obs_overhead(frames_per_sequence=40, repeats=3)
        if result["ratio"] >= MIN_FPS_RATIO:
            return
    assert result["ratio"] >= MIN_FPS_RATIO, (
        f"instrumentation costs too much: {result['instrumented_fps']:.1f} "
        f"fps instrumented vs {result['plain_fps']:.1f} fps plain "
        f"(ratio {result['ratio']:.3f} < {MIN_FPS_RATIO})"
    )


def test_instrumented_run_populates_engine_metrics():
    """The overhead being low must not mean the metrics are missing."""
    from repro.bench import BENCH_SYSTEMS
    from repro.core.config import build_system
    from repro.datasets.kitti import kitti_like_dataset
    from repro.obs import MetricsRegistry

    dataset = kitti_like_dataset(num_sequences=1, frames_per_sequence=10)
    registry = MetricsRegistry()
    system = build_system(BENCH_SYSTEMS["catdet"])
    pipeline = system.build_pipeline().instrument(registry)
    pipeline.run_sequence(dataset.sequences[0])
    assert registry.get("engine_frames_total").value() == 10
    stage_seconds = registry.get("engine_stage_seconds")
    assert stage_seconds.labels_seen(), "per-stage timings were not recorded"
    assert sum(
        stage_seconds.count(labels) for labels in stage_seconds.labels_seen()
    ) > 0
