"""Table 5: the refinement network determines CaTDet's accuracy.

Paper (KITTI Hard, proposal net ResNet-10b):

    model      FR-CNN mAP / mD / ops    CaTDet(R) mAP / mD / ops
    ResNet-18     0.687 / 5.9 / 138       0.696 / 6.0 / 24.4
    ResNet-50     0.740 / 3.3 / 254       0.741 / 4.0 / 39.8
    VGG-16        0.742 / 4.2 / 179       0.743 / 4.4 / 63.9
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.config import SystemConfig
from repro.harness.configs import TABLE5_REFINEMENT_MODELS
from repro.harness.tables import format_table

PAPER = {
    "resnet18": (0.687, 5.9, 138.0, 0.696, 6.0, 24.4),
    "resnet50": (0.740, 3.3, 254.0, 0.741, 4.0, 39.8),
    "vgg16": (0.742, 4.2, 179.0, 0.743, 4.4, 63.9),
}


def test_table5_refinement_network_analysis(benchmark, kitti_experiment):
    def run_all():
        out = {}
        for model in TABLE5_REFINEMENT_MODELS:
            single = kitti_experiment(SystemConfig("single", model))
            catdet = kitti_experiment(SystemConfig("catdet", model, "resnet10b"))
            out[model] = (single, catdet)
        return out

    results = run_once(benchmark, run_all)

    rows = []
    for model, (single, catdet) in results.items():
        paper = PAPER[model]
        rows.append(
            [
                model,
                single.mean_ap("hard"), paper[0],
                single.ops_gops, paper[2],
                catdet.mean_ap("hard"), paper[3],
                catdet.ops_gops, paper[5],
            ]
        )
    print()
    print(
        format_table(
            ["refinement", "1model_mAP", "(pap)", "1model_ops", "(pap)",
             "catdet_mAP", "(pap)", "catdet_ops", "(pap)"],
            rows,
            title="Table 5 — refinement network analysis (KITTI Hard)",
        )
    )

    for model in TABLE5_REFINEMENT_MODELS:
        single, catdet = results[model]
        # CaTDet's accuracy tracks its refinement net's single-model
        # accuracy closely (paper: within ~1%).
        assert catdet.mean_ap("hard") == pytest.approx(
            single.mean_ap("hard"), abs=0.04
        )
        # And does so at a fraction of the ops.
        assert catdet.ops_gops < single.ops_gops / 2.0

    # Stronger refinement nets give more accurate CaTDets.
    weak = results["resnet18"][1].mean_ap("hard")
    strong = results["resnet50"][1].mean_ap("hard")
    assert strong > weak
